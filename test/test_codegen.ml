(* Tests for code generation: partition plans, merged programs, network
   replacement, C emission, and program-size estimation. *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

let check = Alcotest.check
let set = Testlib.set
let podium = Testlib.podium

(* --- Plans ------------------------------------------------------------- *)

let test_level_order () =
  check (Alcotest.list Alcotest.int) "partition {6,8,9}" [ 6; 8; 9 ]
    (Codegen.Plan.level_order podium (set [ 6; 8; 9 ]));
  check (Alcotest.list Alcotest.int) "partition {2,3,4,5}" [ 2; 3; 4; 5 ]
    (Codegen.Plan.level_order podium (set [ 2; 3; 4; 5 ]))

let test_plan_pins_match_cut () =
  List.iter
    (fun members ->
      let plan = Codegen.Plan.build podium members in
      check Alcotest.int "input pins"
        (Netlist.Cut.inputs_used podium members)
        (Array.length plan.Codegen.Plan.input_pins);
      check Alcotest.int "output pins"
        (Netlist.Cut.outputs_used podium members)
        (Array.length plan.Codegen.Plan.output_pins))
    [ set [ 2; 3; 4; 5 ]; set [ 6; 8; 9 ]; set [ 7; 8 ]; set [ 6; 9 ] ]

let test_plan_program_closed () =
  let plan = Codegen.Plan.build podium (set [ 2; 3; 4; 5 ]) in
  let p = plan.Codegen.Plan.program in
  check (Alcotest.list Alcotest.string) "no free variables" []
    (Behavior.Ast.free_variables p);
  check Alcotest.bool "reads only bound input pins" true
    (Behavior.Ast.max_input_index p
     < Array.length plan.Codegen.Plan.input_pins);
  check Alcotest.bool "writes only bound output pins" true
    (Behavior.Ast.max_output_index p
     < Array.length plan.Codegen.Plan.output_pins)

let test_plan_errors () =
  let fails name f =
    match f () with
    | exception Codegen.Plan.Plan_error _ -> ()
    | _ -> Alcotest.failf "%s did not raise" name
  in
  fails "empty" (fun () -> Codegen.Plan.build podium Node_id.Set.empty);
  fails "unknown node" (fun () -> Codegen.Plan.build podium (set [ 99 ]));
  fails "sensor member" (fun () -> Codegen.Plan.build podium (set [ 1; 2 ]));
  let doorbell = Designs.Library.doorbell_extender_1.Designs.Design.network in
  fails "comm member" (fun () -> Codegen.Plan.build doorbell (set [ 2; 3 ]))

let test_descriptor_of_plan () =
  let plan = Codegen.Plan.build podium (set [ 6; 8; 9 ]) in
  let d = Codegen.Plan.descriptor plan in
  check Alcotest.int "inputs" 2 d.Eblock.Descriptor.n_inputs;
  check Alcotest.int "outputs" 2 d.Eblock.Descriptor.n_outputs;
  check Alcotest.bool "programmable kind" true
    (Eblock.Kind.equal d.Eblock.Descriptor.kind Eblock.Kind.Programmable)

(* --- Replacement --------------------------------------------------------- *)

let paredown_replace g =
  let sol = (Core.Paredown.run g).Core.Paredown.solution in
  (Codegen.Replace.apply g sol, sol)

let test_replace_podium_structure () =
  let result, sol = paredown_replace podium in
  let g' = result.Codegen.Replace.network in
  check Alcotest.int "two programmable blocks" 2
    (List.length result.Codegen.Replace.programmable_ids);
  check Alcotest.int "inner after" 3 (Graph.inner_count g');
  check Alcotest.int "total inner metric agrees"
    (Core.Solution.total_inner_after podium sol)
    (Graph.inner_count g');
  (* interface nodes keep their ids *)
  check (Alcotest.list Alcotest.int) "sensors" (Graph.sensors podium)
    (Graph.sensors g');
  check (Alcotest.list Alcotest.int) "outputs"
    (Graph.primary_outputs podium) (Graph.primary_outputs g');
  Testlib.check_ok "still structurally valid"
    (Result.map_error (String.concat "; ") (Graph.validate g'))

let test_replace_equivalent () =
  let result, _ = paredown_replace podium in
  Testlib.check_ok "behaviourally equivalent"
    (Result.map_error
       (Format.asprintf "%a" Sim.Equiv.pp_mismatch)
       (Sim.Equiv.check_random ~reference:podium
          ~candidate:result.Codegen.Replace.network ~seed:17 ~steps:80))

let test_replace_overlap_rejected () =
  let shape = Core.Shape.default in
  let sol =
    Core.Solution.
      {
        partitions =
          [
            Core.Partition.make ~members:(set [ 2; 3; 4; 5 ]) ~shape;
            Core.Partition.make ~members:(set [ 3; 4; 5 ]) ~shape;
          ];
      }
  in
  match Codegen.Replace.apply podium sol with
  | exception Codegen.Replace.Replace_error _ -> ()
  | _ -> Alcotest.fail "overlapping partitions accepted"

let test_synthesize_convenience () =
  let result, pd = Codegen.Replace.synthesize podium in
  check Alcotest.int "same partitions" 2
    (Core.Solution.programmable_count pd.Core.Paredown.solution);
  check Alcotest.int "same networks" 3
    (Graph.inner_count result.Codegen.Replace.network)

(* --- C emission ------------------------------------------------------------ *)

let test_c_expr () =
  let open Behavior.Ast in
  check Alcotest.string "input macro" "EB_IN(0)" (Codegen.C_emit.expr (input 0));
  check Alcotest.string "nested" "EB_IN(0) && (!x)"
    (Codegen.C_emit.expr (input 0 &&& not_ (var "x")));
  check Alcotest.string "timer" "EB_TIMER_FIRED(2)"
    (Codegen.C_emit.expr (Timer_fired 2));
  check Alcotest.string "conditional" "(b ? 1 : 0)"
    (Codegen.C_emit.expr (If_expr (var "b", int_ 1, int_ 0)))

let test_c_program_structure () =
  let plan = Codegen.Plan.build podium (set [ 2; 3; 4; 5 ]) in
  let text =
    Codegen.C_emit.program ~block_name:"test" ~n_inputs:1 ~n_outputs:2
      plan.Codegen.Plan.program
  in
  List.iter
    (fun needle ->
      check Alcotest.bool needle true (Testlib.contains text needle))
    [
      "void eblock_step(void)";
      "static unsigned char b2_prev = 0;";
      "EB_OUT(0";
      "EB_SET_TIMER(0, 30);";
      "EB_SET_TIMER(1, 60);";
      "#ifndef EB_IN";
    ];
  let count c =
    String.fold_left (fun acc ch -> if ch = c then acc + 1 else acc) 0 text
  in
  check Alcotest.int "balanced braces" (count '{') (count '}');
  check Alcotest.int "balanced parens" (count '(') (count ')')

let test_c_compiles () =
  (* the emitted file must be a valid C translation unit; checked with the
     system compiler when one is available *)
  match
    List.find_opt
      (fun cc -> Sys.command (Printf.sprintf "command -v %s >/dev/null" cc) = 0)
      [ "cc"; "gcc"; "clang" ]
  with
  | None -> ()  (* no compiler in this environment; nothing to check *)
  | Some cc ->
    let dir = Filename.temp_file "paredown" "" in
    Sys.remove dir;
    Sys.mkdir dir 0o755;
    let counter = ref 0 in
    let compile plan =
      incr counter;
      let path = Filename.concat dir (Printf.sprintf "prog%d.c" !counter) in
      Codegen.C_emit.write_file path
        ~n_inputs:(Array.length plan.Codegen.Plan.input_pins)
        ~n_outputs:(Array.length plan.Codegen.Plan.output_pins)
        plan.Codegen.Plan.program;
      let status =
        Sys.command
          (Printf.sprintf "%s -std=c99 -Wall -Werror -c %s -o %s 2>/dev/null"
             cc (Filename.quote path)
             (Filename.quote (Filename.concat dir "prog.o")))
      in
      check Alcotest.int (path ^ " compiles cleanly") 0 status
    in
    (* every partition of every library design *)
    List.iter
      (fun d ->
        let g = d.Designs.Design.network in
        let sol = (Core.Paredown.run g).Core.Paredown.solution in
        List.iter
          (fun p -> compile (Codegen.Plan.build g p.Core.Partition.members))
          sol.Core.Solution.partitions)
      Designs.Library.all;
    check Alcotest.bool "compiled a meaningful number" true (!counter >= 15)

(* --- Exact combinational verification ------------------------------------- *)

let test_verify_combinational () =
  let g = Designs.Library.any_window_open_alarm.Designs.Design.network in
  (match Codegen.Verify.check_partition g (set [ 5; 6; 7 ]) with
   | Codegen.Verify.Proven -> ()
   | v -> Alcotest.failf "or-tree not proven: %a" Codegen.Verify.pp_status v);
  (match Codegen.Verify.check_partition podium (set [ 6; 8 ]) with
   | Codegen.Verify.Proven -> ()
   | v ->
     Alcotest.failf "splitter+or not proven: %a" Codegen.Verify.pp_status v)

let test_verify_timer_partition_cosimulated () =
  (* node 2 of the podium partition uses timers, so no exact tier
     applies; the verdict must still be explicit evidence, not a skip *)
  match Codegen.Verify.check_partition podium (set [ 2; 3; 4; 5 ]) with
  | Codegen.Verify.Cosim_passed { scripts; checks } ->
    check Alcotest.bool "ran at least one script" true (scripts >= 1);
    check Alcotest.bool "ran at least one check" true (checks >= scripts)
  | v ->
    Alcotest.failf "expected Cosim_passed, got %a" Codegen.Verify.pp_status v

let test_verify_solution () =
  (* a purely combinational random population: every found partition is
     provable by enumeration *)
  let profile =
    {
      Randgen.Generator.default_profile with
      sequential_probability = 0.0;
    }
  in
  let rng = Prng.create 77 in
  for _ = 1 to 15 do
    let g =
      Randgen.Generator.generate ~profile ~rng:(Prng.split rng) ~inner:12 ()
    in
    let sol = (Core.Paredown.run g).Core.Paredown.solution in
    let report = Codegen.Verify.check_solution g sol in
    if not (Codegen.Verify.ok report) then
      Alcotest.failf "solution failed verification: %a" Codegen.Verify.pp_report
        report;
    check Alcotest.int "all partitions proven"
      (Core.Solution.programmable_count sol)
      (Codegen.Verify.tally report).Codegen.Verify.proven
  done

let test_verdict_rendering () =
  let text v = Format.asprintf "%a" Codegen.Verify.pp_status v in
  check Alcotest.bool "proven" true
    (Testlib.contains (text Codegen.Verify.Proven) "proven");
  check Alcotest.bool "bounded" true
    (Testlib.contains
       (text (Codegen.Verify.Bounded_equivalent { states = 4; depth = 3 }))
       "4 state");
  check Alcotest.bool "cosim" true
    (Testlib.contains
       (text (Codegen.Verify.Cosim_passed { scripts = 3; checks = 15 }))
       "co-simulation");
  check Alcotest.bool "skip reason" true
    (Testlib.contains (text (Codegen.Verify.Skipped "no sensors")) "no sensors");
  check Alcotest.bool "counterexample" true
    (Testlib.contains
       (text
          (Codegen.Verify.Failed
             (Codegen.Verify.Mismatch
                {
                  trail = [ [| true; false |] ];
                  pin = 1;
                  merged = Behavior.Ast.Bool true;
                  composed = Behavior.Ast.Bool false;
                })))
       "pin 1")

(* --- Size estimation ---------------------------------------------------------- *)

let test_size_estimates () =
  let small = Eblock.Catalog.not_gate.Eblock.Descriptor.behavior in
  let big =
    (Codegen.Plan.build podium (set [ 2; 3; 4; 5 ])).Codegen.Plan.program
  in
  check Alcotest.bool "bigger program costs more" true
    (Codegen.Size.estimate_words big > Codegen.Size.estimate_words small);
  check Alcotest.bool "both fit the PIC" true
    (Codegen.Size.fits_pic16f628 small && Codegen.Size.fits_pic16f628 big)

let test_size_never_binding_on_library () =
  (* the paper's §3.3 claim, verified across every partition of every
     library design *)
  List.iter
    (fun d ->
      let g = d.Designs.Design.network in
      let sol = (Core.Paredown.run g).Core.Paredown.solution in
      List.iter
        (fun p ->
          let plan = Codegen.Plan.build g p.Core.Partition.members in
          check Alcotest.bool
            (Printf.sprintf "%s fits" d.Designs.Design.name)
            true
            (Codegen.Size.fits_pic16f628 plan.Codegen.Plan.program))
        sol.Core.Solution.partitions)
    Designs.Library.all

(* --- Properties ------------------------------------------------------------------ *)

let prop_synthesis_equivalent =
  (* timing-sensitive designs (races and path-length hazards) have no
     well-defined settled behaviour to preserve — physical eBlocks resolve
     them nondeterministically — so they are skipped; see
     Sim.Equiv.timing_sensitive *)
  QCheck.Test.make
    ~name:"synthesised networks behave like the originals" ~count:25
    (Testlib.network_arbitrary ~max_inner:14 ()) (fun (_, seed, g) ->
      QCheck.assume
        (not (Sim.Equiv.timing_sensitive_random g ~seed ~steps:25));
      let result, _ = Codegen.Replace.synthesize g in
      match
        Sim.Equiv.check_random ~reference:g
          ~candidate:result.Codegen.Replace.network ~seed ~steps:25
      with
      | Ok () -> true
      | Error _ -> false)

let prop_synthesis_preserves_structure =
  QCheck.Test.make ~name:"synthesised networks stay valid DAGs" ~count:60
    (Testlib.network_arbitrary ~max_inner:25 ()) (fun (_, _, g) ->
      let result, pd = Codegen.Replace.synthesize g in
      let g' = result.Codegen.Replace.network in
      Graph.validate g' = Ok ()
      && Graph.inner_count g'
         = Core.Solution.total_inner_after g pd.Core.Paredown.solution)

let prop_combinational_merges_proven =
  (* every partition PareDown finds in a purely combinational population
     is exactly provable by input enumeration *)
  QCheck.Test.make ~name:"combinational merges proven by enumeration"
    ~count:30
    (QCheck.pair QCheck.(int_range 3 14) QCheck.(int_bound 1_000_000))
    (fun (inner, seed) ->
      let profile =
        {
          Randgen.Generator.default_profile with
          sequential_probability = 0.0;
        }
      in
      let g =
        Randgen.Generator.generate ~profile ~rng:(Prng.create seed) ~inner ()
      in
      let sol = (Core.Paredown.run g).Core.Paredown.solution in
      let report = Codegen.Verify.check_solution g sol in
      Codegen.Verify.ok report
      && (Codegen.Verify.tally report).Codegen.Verify.proven
         = Core.Solution.programmable_count sol)

let prop_merged_programs_fit =
  QCheck.Test.make ~name:"merged programs fit the PIC" ~count:60
    (Testlib.network_arbitrary ~max_inner:25 ()) (fun (_, _, g) ->
      let sol = (Core.Paredown.run g).Core.Paredown.solution in
      List.for_all
        (fun p ->
          Codegen.Size.fits_pic16f628
            (Codegen.Plan.build g p.Core.Partition.members).Codegen.Plan.program)
        sol.Core.Solution.partitions)

let () =
  Alcotest.run "codegen"
    [
      ( "plan",
        [
          Alcotest.test_case "level order" `Quick test_level_order;
          Alcotest.test_case "pins match cut" `Quick test_plan_pins_match_cut;
          Alcotest.test_case "program closed" `Quick test_plan_program_closed;
          Alcotest.test_case "errors" `Quick test_plan_errors;
          Alcotest.test_case "descriptor" `Quick test_descriptor_of_plan;
        ] );
      ( "replace",
        [
          Alcotest.test_case "podium structure" `Quick
            test_replace_podium_structure;
          Alcotest.test_case "behaviour preserved" `Quick
            test_replace_equivalent;
          Alcotest.test_case "overlap rejected" `Quick
            test_replace_overlap_rejected;
          Alcotest.test_case "synthesize convenience" `Quick
            test_synthesize_convenience;
        ] );
      ( "c-emit",
        [
          Alcotest.test_case "expressions" `Quick test_c_expr;
          Alcotest.test_case "program structure" `Quick
            test_c_program_structure;
          Alcotest.test_case "compiles with cc" `Slow test_c_compiles;
        ] );
      ( "verify",
        [
          Alcotest.test_case "combinational proven" `Quick
            test_verify_combinational;
          Alcotest.test_case "timer partitions co-simulated" `Quick
            test_verify_timer_partition_cosimulated;
          Alcotest.test_case "whole solutions" `Quick test_verify_solution;
          Alcotest.test_case "verdict rendering" `Quick
            test_verdict_rendering;
        ] );
      ( "size",
        [
          Alcotest.test_case "estimates" `Quick test_size_estimates;
          Alcotest.test_case "library never size-bound" `Quick
            test_size_never_binding_on_library;
        ] );
      ( "properties",
        Testlib.qtests
          [
            prop_synthesis_equivalent; prop_synthesis_preserves_structure;
            prop_merged_programs_fit; prop_combinational_merges_proven;
          ] );
    ]
