(* The Dense view's semantics are defined by Cut; these properties pin
   the agreement on random graphs and random member subsets, then check
   that the incremental accounting (deltas, exhaustive bin counts)
   reproduces the from-scratch numbers and that the dense exhaustive
   search still returns Table 1's optima. *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id
module Dense = Netlist.Dense
module Cut = Netlist.Cut

let check = Alcotest.check

(* A random network plus a random subset of its nodes (members are
   drawn from all nodes, not just partitionable ones: the Cut
   functions are defined on any subset). *)
let subset_gen =
  QCheck.Gen.(
    Testlib.network_gen ~max_inner:20 () >>= fun (inner, seed, g) ->
    let ids = Array.of_list (Graph.node_ids g) in
    int_range 0 (Array.length ids) >>= fun k ->
    shuffle_a ids >|= fun () ->
    let members =
      Array.to_list (Array.sub ids 0 k) |> Node_id.set_of_list
    in
    (inner, seed, g, members))

let subset_arbitrary =
  QCheck.make
    ~print:(fun (inner, seed, _, members) ->
      Format.asprintf "inner=%d seed=%d members=%a" inner seed
        Node_id.pp_set members)
    subset_gen

let prop name f = QCheck.Test.make ~count:200 ~name subset_arbitrary f

let agreement_properties =
  [
    prop "pins agree with Cut" (fun (_, _, g, members) ->
        let d = Dense.of_graph g in
        let s = Dense.set_of_ids d members in
        let ins, outs = Dense.pins_used d s in
        ins = Cut.inputs_used g members
        && outs = Cut.outputs_used g members
        && Dense.inputs_used d s = ins
        && Dense.outputs_used d s = outs
        && Dense.io_used d s = Cut.io_used g members);
    prop "net pins agree with Cut" (fun (_, _, g, members) ->
        let d = Dense.of_graph g in
        let s = Dense.set_of_ids d members in
        Dense.inputs_used_nets d s = Cut.inputs_used_nets g members
        && Dense.outputs_used_nets d s = Cut.outputs_used_nets g members);
    prop "is_border agrees with Cut on every node" (fun (_, _, g, members) ->
        let d = Dense.of_graph g in
        let s = Dense.set_of_ids d members in
        List.for_all
          (fun id ->
            Dense.is_border d s (Dense.index d id)
            = Cut.is_border g members id)
          (Graph.node_ids g));
    prop "is_convex agrees with Cut" (fun (_, _, g, members) ->
        let d = Dense.of_graph g in
        let s = Dense.set_of_ids d members in
        Dense.is_convex d s = Cut.is_convex g members);
    prop "set round-trips through ids" (fun (_, _, g, members) ->
        let d = Dense.of_graph g in
        let s = Dense.set_of_ids d members in
        Node_id.Set.equal (Dense.ids_of_set d s) members
        && Dense.cardinal s = Node_id.Set.cardinal members);
    prop "iter_members ascends like Set.iter" (fun (_, _, g, members) ->
        let d = Dense.of_graph g in
        let s = Dense.set_of_ids d members in
        let via_dense = ref [] in
        Dense.iter_members s (fun i ->
            via_dense := Dense.node_id d i :: !via_dense);
        List.rev !via_dense = Node_id.Set.elements members);
    prop "removal_delta matches recount" (fun (_, _, g, members) ->
        let d = Dense.of_graph g in
        let s = Dense.set_of_ids d members in
        Node_id.Set.for_all
          (fun id ->
            let b = Dense.index d id in
            let d_in, d_out = Dense.removal_delta d s b in
            let without = Node_id.Set.remove id members in
            d_in = Cut.inputs_used g without - Cut.inputs_used g members
            && d_out
               = Cut.outputs_used g without - Cut.outputs_used g members)
          members);
    prop "addition_delta inverts removal_delta" (fun (_, _, g, members) ->
        let d = Dense.of_graph g in
        let s = Dense.set_of_ids d members in
        List.for_all
          (fun id ->
            if Node_id.Set.mem id members then true
            else begin
              let b = Dense.index d id in
              let a_in, a_out = Dense.addition_delta d s b in
              Dense.add s b;
              let r_in, r_out = Dense.removal_delta d s b in
              Dense.remove s b;
              a_in = -r_in && a_out = -r_out
            end)
          (Graph.node_ids g));
  ]

(* --- Exhaustive search on the dense kernel ------------------------------- *)

(* Every partition the dense leaf validation accepts must also satisfy
   the reference oracle, and the search must still find Table 1's
   optima (the full optima table lives in test_exhaustive.ml; this is
   the kernel-equivalence angle: oracle-valid bins + pinned work
   counters). *)
let test_exhaustive_matches_oracle () =
  List.iter
    (fun d ->
      let g = d.Designs.Design.network in
      if Netlist.Graph.inner_count g <= 9 then begin
        let r = Core.Exhaustive.run g in
        List.iter
          (fun p ->
            match Core.Partition.check g p with
            | Ok () -> ()
            | Error inv ->
              Alcotest.failf "%s: dense search accepted %a: %a"
                d.Designs.Design.name Node_id.pp_set
                p.Core.Partition.members Core.Partition.pp_invalidity inv)
          r.Core.Exhaustive.solution.Core.Solution.partitions
      end)
    Designs.Library.all

(* The DFS control flow is untouched by the dense rewrite, so the work
   counters are load-bearing constants: a change means the search
   explored a different tree, not just explored it faster. *)
let test_pinned_work_counters () =
  let podium = Testlib.podium in
  let r = Core.Exhaustive.run podium in
  check Alcotest.int "podium nodes_explored" 8282
    r.Core.Exhaustive.nodes_explored;
  check Alcotest.int "podium leaves_checked" 3574
    r.Core.Exhaustive.leaves_checked;
  let g10 =
    Randgen.Generator.generate ~rng:(Prng.create 2) ~inner:10 ()
  in
  let r10 = Core.Exhaustive.run g10 in
  check Alcotest.int "g10 nodes_explored" 715970
    r10.Core.Exhaustive.nodes_explored;
  check Alcotest.int "g10 leaves_checked" 558310
    r10.Core.Exhaustive.leaves_checked;
  check Alcotest.int "g10 total" 7
    (Core.Solution.total_inner_after g10 r10.Core.Exhaustive.solution);
  let pd =
    Core.Paredown.run
      (Randgen.Generator.generate ~rng:(Prng.create 3) ~inner:20 ())
  in
  check
    (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int)
    "g20 paredown (outer, fit_checks, removals)" (13, 108, 95)
    ( pd.Core.Paredown.stats.Core.Paredown.outer_iterations,
      pd.Core.Paredown.stats.Core.Paredown.fit_checks,
      pd.Core.Paredown.stats.Core.Paredown.removals )

(* --- Parallel sweeps ------------------------------------------------------ *)

(* Parallel.map must be observationally List.map. *)
let parallel_map_is_map =
  QCheck.Test.make ~count:50 ~name:"Parallel.map ~jobs:3 = List.map"
    QCheck.(list small_int)
    (fun xs -> Parallel.map ~jobs:3 (fun x -> x * x) xs
               = List.map (fun x -> x * x) xs)

(* A failing parallel run must raise the exception of the LOWEST failing
   index — the one List.map would raise — whatever the domain schedule.
   Regression for the claimed-then-skipped race: a worker that had
   already claimed a low index used to be abandoned when a higher index
   failed first, letting the higher failure win. *)
exception Boom of int

let parallel_failure_is_lowest_index =
  QCheck.Test.make ~count:100
    ~name:"Parallel.map ~jobs:4 raises the same failure as ~jobs:1"
    QCheck.(pair (list_of_size Gen.(5 -- 40) small_int) (list small_int))
    (fun (xs, failing) ->
      let n = List.length xs in
      let fail_at =
        List.filter (fun i -> i >= 0 && i < n) failing
        |> List.sort_uniq compare
      in
      QCheck.assume (fail_at <> []);
      let f i = if List.mem i fail_at then raise (Boom i) else i in
      let items = List.init n (fun i -> i) in
      let outcome jobs =
        match Parallel.map ~jobs f items with
        | _ -> None
        | exception Boom i -> Some i
      in
      outcome 4 = outcome 1 && outcome 4 = Some (List.hd fail_at))

(* Domain-safe metrics: a 2-domain sweep must report exactly the same
   deterministic counter totals as the sequential one. *)
let test_two_domain_counters_agree () =
  let counter_delta jobs =
    let (), entries =
      Obs.Metrics.with_scope (fun () ->
          ignore (Experiments.Scale.run_random ~sizes:[ 20; 30; 40 ] ~jobs ()))
    in
    List.filter_map
      (fun e ->
        match e.Obs.Metrics.value with
        | Obs.Metrics.Count n when n <> 0 -> Some (e.Obs.Metrics.name, n)
        | _ -> None)
      entries
  in
  let seq = counter_delta 1 and par = counter_delta 2 in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "counter deltas, jobs 2 vs jobs 1" seq par;
  check Alcotest.bool "fit_checks delta present" true
    (List.mem_assoc "core.paredown.fit_checks" seq)

let test_parallel_results_in_order () =
  let sizes = [ 20; 25; 30; 35; 40 ] in
  let seq = Experiments.Scale.run_random ~sizes ()
  and par = Experiments.Scale.run_random ~sizes ~jobs:4 () in
  check (Alcotest.list Alcotest.int) "inner order"
    (List.map (fun p -> p.Experiments.Scale.inner) seq)
    (List.map (fun p -> p.Experiments.Scale.inner) par);
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "(fit_checks, total) per size"
    (List.map
       (fun p ->
         (p.Experiments.Scale.fit_checks, p.Experiments.Scale.total))
       seq)
    (List.map
       (fun p ->
         (p.Experiments.Scale.fit_checks, p.Experiments.Scale.total))
       par)

let () =
  Alcotest.run "dense"
    [
      ("cut agreement", Testlib.qtests agreement_properties);
      ( "exhaustive kernel",
        [
          Alcotest.test_case "oracle-valid partitions" `Quick
            test_exhaustive_matches_oracle;
          Alcotest.test_case "pinned work counters" `Quick
            test_pinned_work_counters;
        ] );
      ( "parallel",
        Testlib.qtests
          [ parallel_map_is_map; parallel_failure_is_lowest_index ]
        @ [
            Alcotest.test_case "2-domain counters agree" `Quick
              test_two_domain_counters_agree;
            Alcotest.test_case "results in input order" `Quick
              test_parallel_results_in_order;
          ] );
    ]
