(* Tests for the design library: structural validity, Table 1 inner-block
   counts, the reconstruction invariants each design was built to satisfy,
   and the registry. *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id

let check = Alcotest.check
let set = Testlib.set

let test_all_structurally_valid () =
  List.iter
    (fun d ->
      Testlib.check_ok d.Designs.Design.name
        (Result.map_error (String.concat "; ")
           (Graph.validate d.Designs.Design.network)))
    Designs.Library.all

let test_inner_counts_match_table1 () =
  List.iter
    (fun d ->
      match d.Designs.Design.paper with
      | Some row ->
        check Alcotest.int d.Designs.Design.name
          row.Designs.Design.inner_original
          (Designs.Design.inner_count d)
      | None -> Alcotest.failf "%s missing its Table 1 row" d.Designs.Design.name)
    Designs.Library.table1

let test_table1_count_and_order () =
  check Alcotest.int "15 designs" 15 (List.length Designs.Library.table1);
  (* Table 1 is sorted by inner-block count *)
  let counts = List.map Designs.Design.inner_count Designs.Library.table1 in
  check (Alcotest.list Alcotest.int) "table order"
    [ 2; 2; 2; 2; 3; 3; 3; 3; 5; 6; 8; 10; 19; 19; 23 ] counts

let test_find () =
  (match Designs.Library.find "podium timer 3" with
   | Some d ->
     check Alcotest.string "case-insensitive" "Podium Timer 3"
       d.Designs.Design.name
   | None -> Alcotest.fail "lookup failed");
  (* CLI spellings: separators normalize and a unique prefix resolves *)
  (match Designs.Library.find "entry_gate" with
   | Some d ->
     check Alcotest.string "normalized prefix" "Entry Gate Detector"
       d.Designs.Design.name
   | None -> Alcotest.fail "entry_gate did not resolve");
  check Alcotest.bool "ambiguous prefix" true
    (Designs.Library.find "doorbell" = None);
  check Alcotest.bool "unknown" true (Designs.Library.find "nope" = None)

let test_unique_names () =
  let names = List.map (fun d -> d.Designs.Design.name) Designs.Library.all in
  check Alcotest.int "no duplicates" (List.length names)
    (List.length (List.sort_uniq String.compare names))

let test_podium_matches_figure5 () =
  let g = Designs.Library.podium_timer_3.Designs.Design.network in
  check (Alcotest.list Alcotest.int) "inner ids as in the figure"
    [ 2; 3; 4; 5; 6; 7; 8; 9 ] (Graph.inner_nodes g);
  (* the exact edge structure the Figure 5 derivation rests on *)
  let edge src sport dst dport =
    List.exists
      (fun e ->
        e.Graph.src = { Graph.node = src; port = sport }
        && e.Graph.dst = { Graph.node = dst; port = dport })
      (Graph.edges g)
  in
  List.iter
    (fun (s, sp, d, dp) ->
      check Alcotest.bool
        (Printf.sprintf "edge %d.%d->%d.%d" s sp d dp)
        true (edge s sp d dp))
    [
      (1, 0, 2, 0); (2, 0, 3, 0); (2, 0, 4, 0); (3, 0, 5, 0); (4, 0, 5, 1);
      (5, 0, 6, 0); (5, 0, 7, 0); (6, 0, 8, 0); (6, 1, 9, 0); (7, 0, 8, 1);
      (7, 1, 10, 0); (8, 0, 11, 0); (9, 0, 12, 0);
    ]

let test_comm_barrier_designs () =
  (* the doorbell/motion designs rely on comm blocks being inner but not
     partitionable *)
  List.iter
    (fun (d, comm_expected) ->
      let g = d.Designs.Design.network in
      let comm =
        List.length
          (List.filter
             (fun id -> Graph.kind g id = Eblock.Kind.Comm)
             (Graph.inner_nodes g))
      in
      check Alcotest.int (d.Designs.Design.name ^ " comm blocks")
        comm_expected comm)
    [
      (Designs.Library.doorbell_extender_1, 4);
      (Designs.Library.doorbell_extender_2, 4);
      (Designs.Library.motion_on_property_alert, 14);
      (Designs.Library.two_zone_security, 4);
      (Designs.Library.timed_passage, 6);
    ]

let test_two_button_light_blocked () =
  (* the reconstruction is engineered so that no candidate fits a 2x2:
     every pair or triple needs at least 3 output pins *)
  let g = Designs.Library.two_button_light.Designs.Design.network in
  let subsets = [ [ 3; 4 ]; [ 3; 5 ]; [ 4; 5 ]; [ 3; 4; 5 ] ] in
  List.iter
    (fun ids ->
      let p =
        Core.Partition.make ~members:(set ids) ~shape:Core.Shape.default
      in
      check Alcotest.bool
        (Format.asprintf "%a invalid" Node_id.pp_set (set ids))
        false
        (Core.Partition.is_valid g p))
    subsets

(* A malformed roster is a caller error, so [make] raises
   [Invalid_argument] — not [Failure], which reads as an internal
   defect. *)
let expect_failure what contains_all f =
  match f () with
  | exception Invalid_argument msg ->
    List.iter
      (fun needle ->
        check Alcotest.bool
          (Printf.sprintf "%s message mentions %S" what needle)
          true (Testlib.contains msg needle))
      contains_all
  | exception Failure _ ->
    Alcotest.failf "%s raised Failure instead of Invalid_argument" what
  | _ -> Alcotest.failf "%s did not raise Invalid_argument" what

let test_make_malformed_names_design_and_block () =
  (* and2's second input is left undriven: the message must name the
     design, the undriven port, and resolve the node id to its block *)
  expect_failure "malformed design"
    [ "Broken Widget"; "input port 2.1 is not driven"; "2=and2" ]
    (fun () ->
      Designs.Design.make ~name:"Broken Widget"
        ~description:"negative fixture"
        ~nodes:
          [ (1, Eblock.Catalog.button); (2, Eblock.Catalog.and2);
            (3, Eblock.Catalog.led) ]
        ~edges:[ ((1, 0), (2, 0)); ((2, 0), (3, 0)) ]
        ())

let test_make_table1_mismatch_names_design () =
  expect_failure "Table 1 mismatch"
    [ "Miscounted Widget"; "has 1 inner blocks"; "says 5"; "2=" ]
    (fun () ->
      Designs.Design.make ~name:"Miscounted Widget"
        ~description:"negative fixture"
        ~paper:
          {
            Designs.Design.inner_original = 5;
            exhaustive_total = None;
            exhaustive_prog = None;
            paredown_total = 1;
            paredown_prog = 1;
          }
        ~nodes:
          [ (1, Eblock.Catalog.button); (2, Eblock.Catalog.not_gate);
            (3, Eblock.Catalog.led) ]
        ~edges:[ ((1, 0), (2, 0)); ((2, 0), (3, 0)) ]
        ())

let test_designs_simulate () =
  (* every design runs under random stimuli without structural failures *)
  List.iter
    (fun d ->
      let g = d.Designs.Design.network in
      let engine = Sim.Engine.create g in
      let script =
        Sim.Stimulus.random
          ~rng:(Prng.create 13)
          ~sensors:(Graph.sensors g) ~steps:20 ~spacing:25
      in
      let observations = Sim.Stimulus.settled_outputs engine script in
      check Alcotest.int (d.Designs.Design.name ^ " observations") 20
        (List.length observations))
    Designs.Library.all

let test_garage_figure1_behaviour () =
  (* Figure 1: LED lights iff the door contact is closed and it is dark *)
  let g = Designs.Library.garage_open_at_night.Designs.Design.network in
  let engine = Sim.Engine.create g in
  let led = List.hd (Graph.primary_outputs g) in
  let expect msg want door light =
    Sim.Engine.set_sensor engine 1 door;
    Sim.Engine.set_sensor engine 2 light;
    Sim.Engine.settle engine;
    check Testlib.value msg (Behavior.Ast.Bool want)
      (Sim.Engine.output_value engine led)
  in
  expect "closed day" false false true;
  expect "open day" false true true;
  expect "open night" true true false;
  expect "closed night" false false false

let () =
  Alcotest.run "designs"
    [
      ( "library",
        [
          Alcotest.test_case "all valid" `Quick test_all_structurally_valid;
          Alcotest.test_case "inner counts" `Quick
            test_inner_counts_match_table1;
          Alcotest.test_case "table order" `Quick test_table1_count_and_order;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "unique names" `Quick test_unique_names;
        ] );
      ( "reconstructions",
        [
          Alcotest.test_case "podium = figure 5" `Quick
            test_podium_matches_figure5;
          Alcotest.test_case "comm barriers" `Quick test_comm_barrier_designs;
          Alcotest.test_case "two-button light blocked" `Quick
            test_two_button_light_blocked;
        ] );
      ( "construction errors",
        [
          Alcotest.test_case "malformed names design and block" `Quick
            test_make_malformed_names_design_and_block;
          Alcotest.test_case "table1 mismatch names design" `Quick
            test_make_table1_mismatch_names_design;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "all simulate" `Quick test_designs_simulate;
          Alcotest.test_case "garage logic" `Quick
            test_garage_figure1_behaviour;
        ] );
    ]
