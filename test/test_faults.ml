(* Tests for the fault-injection layer: Sim.Fault plans, their engine
   hooks (drop / duplicate / corrupt / jitter / link death / stuck-at /
   spurious reset), the Sim.Degrade classifier, and the flat-vs-partitioned
   fault-tolerance experiment. *)

module Graph = Netlist.Graph
module C = Eblock.Catalog
module F = Sim.Fault

let check = Alcotest.check
let value = Testlib.value

let full_observation ?faults g script =
  let engine = Sim.Engine.create ?faults g in
  let obs = Sim.Stimulus.settled_outputs engine script in
  ( obs,
    Sim.Engine.trace engine,
    Sim.Engine.packet_count engine,
    Sim.Engine.activation_count engine )

(* --- Plans --------------------------------------------------------------- *)

let test_trivial_plans () =
  check Alcotest.bool "none is trivial" true (F.is_trivial F.none);
  check Alcotest.bool "drop 0 is trivial" true (F.is_trivial (F.drop_all 0.));
  check Alcotest.bool "drop 0.1 is not" false (F.is_trivial (F.drop_all 0.1));
  check Alcotest.bool "jitter is not" false
    (F.is_trivial (F.degrade_all ~jitter:2 ()));
  check Alcotest.bool "stuck is not" false
    (F.is_trivial
       {
         F.none with
         node_faults =
           [ (1, { F.no_node_fault with
                   stuck = [ { F.port = 0; value = Bool true; from = 0 } ] });
           ];
       })

(* The acceptance criterion: an empty plan leaves output traces, packet
   counts, and settled observations bit-identical to an uninstrumented
   run, on every Table 1 design. *)
let test_empty_plan_transparent () =
  List.iter
    (fun d ->
      let g = d.Designs.Design.network in
      let script =
        Sim.Stimulus.random ~rng:(Prng.create 7)
          ~sensors:(Graph.sensors g) ~steps:15 ~spacing:20
      in
      check Alcotest.bool
        (d.Designs.Design.name ^ " transparent")
        true
        (full_observation g script = full_observation ~faults:F.none g script))
    Designs.Library.table1

let test_empty_plan_injects_nothing () =
  let g, sensor, _, _ = Testlib.chain [ C.not_gate; C.toggle ] in
  let engine = Sim.Engine.create ~faults:F.none g in
  Sim.Engine.set_sensor engine sensor true;
  Sim.Engine.settle engine;
  match Sim.Engine.fault_stats engine with
  | Some s -> check Alcotest.int "no faults struck" 0 (F.total s)
  | None -> Alcotest.fail "fault stats absent despite a plan"

(* --- Fault classes, deterministically ------------------------------------ *)

let test_drop_everything () =
  let g, sensor, _, led = Testlib.chain [ C.not_gate ] in
  let engine = Sim.Engine.create ~faults:(F.drop_all ~seed:3 1.0) g in
  Sim.Engine.set_sensor engine sensor true;
  Sim.Engine.settle engine;
  (* the NOT's power-on value survives: the change never got through *)
  check value "led frozen at power-on value" (Bool true)
    (Sim.Engine.output_value engine led);
  check Alcotest.int "send attempt still counted" 1
    (Sim.Engine.packet_count engine);
  match Sim.Engine.fault_stats engine with
  | Some s -> check Alcotest.int "one drop" 1 s.F.drops
  | None -> Alcotest.fail "no stats"

let test_duplication_absorbed_by_idempotence () =
  (* catalogue behaviours are idempotent under re-activation with
     unchanged inputs, so duplicated packets change no settled value —
     but they are injected and counted *)
  let g, sensor, _, _ = Testlib.chain [ C.toggle ] in
  let script =
    Sim.Stimulus.[ { time = 1; sensor; value = true };
                   { time = 10; sensor; value = false } ]
  in
  let clean_obs, clean_trace, _, _ = full_observation g script in
  let plan = F.degrade_all ~seed:5 ~duplicate:1.0 () in
  let engine = Sim.Engine.create ~faults:plan g in
  let obs = Sim.Stimulus.settled_outputs engine script in
  check Alcotest.bool "settled outputs unchanged" true (obs = clean_obs);
  check Alcotest.bool "trace unchanged" true
    (Sim.Engine.trace engine = clean_trace);
  match Sim.Engine.fault_stats engine with
  | Some s -> check Alcotest.bool "duplicates struck" true (s.F.duplicates > 0)
  | None -> Alcotest.fail "no stats"

let test_corruption_flips_booleans () =
  let g, sensor, _, led = Testlib.chain [ C.not_gate ] in
  let engine =
    Sim.Engine.create ~faults:(F.degrade_all ~seed:5 ~corrupt:1.0 ()) g
  in
  Sim.Engine.set_sensor engine sensor true;
  Sim.Engine.settle engine;
  (* the rise was corrupted back to false in flight: the NOT never saw a
     change, so the led keeps showing true (clean run would show false) *)
  check value "led unchanged by corrupted packet" (Bool true)
    (Sim.Engine.output_value engine led);
  match Sim.Engine.fault_stats engine with
  | Some s -> check Alcotest.bool "corruptions struck" true (s.F.corruptions > 0)
  | None -> Alcotest.fail "no stats"

let test_link_death () =
  let g, sensor, _, led = Testlib.chain [ C.not_gate ] in
  let plan =
    { F.none with
      seed = 9;
      default_edge = { F.no_edge_fault with dies_at = Some 10 } }
  in
  let engine = Sim.Engine.create ~faults:plan g in
  Sim.Engine.set_sensor_at engine ~time:1 sensor true;
  Sim.Engine.settle engine;
  check value "pre-death change propagates" (Bool false)
    (Sim.Engine.output_value engine led);
  Sim.Engine.set_sensor_at engine ~time:20 sensor false;
  Sim.Engine.settle engine;
  check value "post-death change lost" (Bool false)
    (Sim.Engine.output_value engine led);
  match Sim.Engine.fault_stats engine with
  | Some s -> check Alcotest.bool "dead-link losses" true
                (s.F.dead_link_losses > 0)
  | None -> Alcotest.fail "no stats"

let test_stuck_at_output () =
  let g, sensor, inner, led = Testlib.chain [ C.not_gate ] in
  let gate = List.hd inner in
  let plan =
    { F.none with
      node_faults =
        [ (gate, { F.no_node_fault with
                   stuck = [ { F.port = 0; value = Bool false; from = 0 } ] });
        ] }
  in
  let engine = Sim.Engine.create ~faults:plan g in
  Sim.Engine.set_sensor_at engine ~time:1 sensor true;
  Sim.Engine.settle engine;
  check value "stuck low agrees with computed low" (Bool false)
    (Sim.Engine.output_value engine led);
  Sim.Engine.set_sensor_at engine ~time:10 sensor false;
  Sim.Engine.settle engine;
  (* clean run would drive the led back to true; the stuck port cannot *)
  check value "led held low by stuck output" (Bool false)
    (Sim.Engine.output_value engine led);
  match Sim.Engine.fault_stats engine with
  | Some s -> check Alcotest.bool "override counted" true
                (s.F.stuck_overrides > 0)
  | None -> Alcotest.fail "no stats"

let test_spurious_reset_loses_state () =
  let g, sensor, inner, led = Testlib.chain [ C.toggle ] in
  let toggle = List.hd inner in
  let plan =
    { F.none with
      node_faults = [ (toggle, { F.no_node_fault with reset_at = [ 10 ] }) ] }
  in
  let run faults =
    let engine = Sim.Engine.create ?faults g in
    List.iter
      (fun (time, v) -> Sim.Engine.set_sensor_at engine ~time sensor v)
      [ (1, true); (20, false); (30, true) ];
    Sim.Engine.settle engine;
    (Sim.Engine.output_value engine led, engine)
  in
  let clean, _ = run None in
  let faulty, engine = run (Some plan) in
  (* two rises toggle twice: clean ends off; the brownout at t=10 erased
     the first flip, so the faulty toggle ends on — settled-to-wrong *)
  check value "clean run ends off" (Bool false) clean;
  check value "reset run ends on" (Bool true) faulty;
  match Sim.Engine.fault_stats engine with
  | Some s -> check Alcotest.int "one reset" 1 s.F.resets
  | None -> Alcotest.fail "no stats"

let test_fault_run_reproducible () =
  let g = Testlib.podium in
  let script =
    Sim.Stimulus.random ~rng:(Prng.create 31) ~sensors:(Graph.sensors g)
      ~steps:20 ~spacing:15
  in
  let plan =
    F.degrade_all ~seed:77 ~drop:0.1 ~duplicate:0.1 ~corrupt:0.05 ~jitter:3 ()
  in
  check Alcotest.bool "same plan, same run" true
    (full_observation ~faults:plan g script
     = full_observation ~faults:plan g script)

(* --- Degradation classification ------------------------------------------ *)

let script_for g seed steps =
  Sim.Stimulus.random ~rng:(Prng.create seed) ~sensors:(Graph.sensors g)
    ~steps ~spacing:20

let test_classify_empty_plan_identical () =
  let g = Testlib.podium in
  let run =
    Sim.Degrade.classify ~faults:F.none g (script_for g 5 15)
  in
  check Alcotest.string "identical" "identical"
    (Sim.Degrade.outcome_to_string run.Sim.Degrade.outcome);
  check Alcotest.int "nothing injected" 0 (F.total run.Sim.Degrade.injected);
  check Alcotest.int "no mismatches" 0 run.Sim.Degrade.mismatched_steps

let test_classify_total_drop_wrong_value () =
  let g, sensor, _, _ = Testlib.chain [ C.not_gate ] in
  (* a single rise: the clean led goes dark, the faulty one never hears
     about it — the final settled observation is wrong *)
  let script = Sim.Stimulus.[ { time = 5; sensor; value = true } ] in
  let run =
    Sim.Degrade.classify ~faults:(F.drop_all ~seed:2 1.0) g script
  in
  check Alcotest.string "settles to wrong value" "wrong-value"
    (Sim.Degrade.outcome_to_string run.Sim.Degrade.outcome);
  check Alcotest.int "final observation wrong" 1
    run.Sim.Degrade.mismatched_steps

let test_classify_event_limit_diverged () =
  (* an absurdly small per-step budget forces the faulty run into the
     Event_limit_exceeded path, which must classify, not raise *)
  let g = Testlib.podium in
  let run =
    Sim.Degrade.classify ~settle_limit:2 ~faults:(F.drop_all ~seed:3 0.5) g
      (script_for g 5 10)
  in
  check Alcotest.string "diverged" "diverged"
    (Sim.Degrade.outcome_to_string run.Sim.Degrade.outcome)

let test_classify_outcome_spectrum () =
  (* across many plan seeds a lossy podium shows both transient glitches
     and settled-wrong outcomes; fixed seeds keep this deterministic *)
  let g = Testlib.podium in
  let script = script_for g 11 20 in
  let outcomes =
    List.map
      (fun seed ->
        (Sim.Degrade.classify ~faults:(F.drop_all ~seed 0.05) g script)
          .Sim.Degrade.outcome)
      (List.init 30 (fun i -> i + 1))
  in
  let has o = List.mem o outcomes in
  check Alcotest.bool "some run recovers from a glitch" true
    (has Sim.Degrade.Glitch_recovered);
  check Alcotest.bool "some run settles wrong" true
    (has Sim.Degrade.Wrong_value);
  (* severity order is what the experiment tallies rely on *)
  check (Alcotest.list Alcotest.int) "severity order" [ 0; 1; 2; 3 ]
    (List.map Sim.Degrade.severity
       [ Sim.Degrade.Identical; Sim.Degrade.Glitch_recovered;
         Sim.Degrade.Wrong_value; Sim.Degrade.Diverged ])

let test_sweep_shares_reference () =
  let g = Testlib.podium in
  let script = script_for g 5 10 in
  let results =
    Sim.Degrade.sweep
      ~plans:[ ("none", F.none); ("drop", F.drop_all ~seed:4 0.1) ]
      g script
  in
  check Alcotest.int "one result per plan" 2 (List.length results);
  check Alcotest.string "empty plan identical" "identical"
    (Sim.Degrade.outcome_to_string
       (List.assoc "none" results).Sim.Degrade.outcome)

(* --- The experiment ------------------------------------------------------- *)

let small_config =
  {
    Experiments.Faults.default_config with
    trials = 3;
    drop_rates = [ 0.05 ];
    steps = 8;
  }

let test_experiment_deterministic () =
  let run () =
    Experiments.Faults.run_design ~config:small_config
      Designs.Library.podium_timer_3
  in
  check Alcotest.bool "same config, same rows" true (run () = run ())

let test_experiment_row_shape () =
  let rows =
    Experiments.Faults.run_design ~config:small_config
      Designs.Library.podium_timer_3
  in
  check Alcotest.int "one row per rate" 1 (List.length rows);
  let r = List.hd rows in
  check Alcotest.int "flat edges" 13 r.Experiments.Faults.flat_edges;
  check Alcotest.bool "partitioning removed fault sites" true
    (r.Experiments.Faults.part_edges < r.Experiments.Faults.flat_edges);
  let total t =
    Experiments.Faults.(
      t.identical + t.recovered + t.wrong + t.diverged)
  in
  check Alcotest.int "flat tally covers every trial" small_config.trials
    (total r.Experiments.Faults.flat);
  check Alcotest.int "part tally covers every trial" small_config.trials
    (total r.Experiments.Faults.part);
  check Alcotest.bool "table renders" true
    (Testlib.contains
       (Experiments.Faults.to_table rows)
       "Podium Timer 3")

let () =
  Alcotest.run "faults"
    [
      ( "plans",
        [
          Alcotest.test_case "trivial detection" `Quick test_trivial_plans;
          Alcotest.test_case "empty plan transparent" `Quick
            test_empty_plan_transparent;
          Alcotest.test_case "empty plan injects nothing" `Quick
            test_empty_plan_injects_nothing;
        ] );
      ( "fault classes",
        [
          Alcotest.test_case "drop everything" `Quick test_drop_everything;
          Alcotest.test_case "duplication absorbed" `Quick
            test_duplication_absorbed_by_idempotence;
          Alcotest.test_case "corruption" `Quick test_corruption_flips_booleans;
          Alcotest.test_case "link death" `Quick test_link_death;
          Alcotest.test_case "stuck-at output" `Quick test_stuck_at_output;
          Alcotest.test_case "spurious reset" `Quick
            test_spurious_reset_loses_state;
          Alcotest.test_case "reproducible" `Quick test_fault_run_reproducible;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "empty plan identical" `Quick
            test_classify_empty_plan_identical;
          Alcotest.test_case "total drop wrong value" `Quick
            test_classify_total_drop_wrong_value;
          Alcotest.test_case "event limit diverged" `Quick
            test_classify_event_limit_diverged;
          Alcotest.test_case "outcome spectrum" `Quick
            test_classify_outcome_spectrum;
          Alcotest.test_case "sweep" `Quick test_sweep_shares_reference;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "deterministic" `Quick
            test_experiment_deterministic;
          Alcotest.test_case "row shape" `Quick test_experiment_row_shape;
        ] );
    ]
