(* The provenance journal: ring semantics, JSONL round-trips, parity
   between the journal's fit-check count and the metrics registry,
   --jobs determinism, the explain queries, the flight-recorder
   post-mortem bundle, and the disabled-path overhead bound. *)

open Alcotest

(* Every test runs against the process-wide journal, so each one resets
   it on the way in and out. *)
let isolated f () =
  Obs.Journal.reset ();
  Fun.protect ~finally:Obs.Journal.reset f

let check_contains what haystack needle =
  check bool
    (Printf.sprintf "%s (looking for %S in %S)" what needle haystack)
    true
    (Testlib.contains haystack needle)

let load_ok = function
  | Ok l -> l
  | Error e -> Alcotest.failf "load failed: %s" e

(* --- Ring semantics --------------------------------------------------------- *)

let test_ring () =
  let j = Obs.Journal.install ~capacity:4 () in
  for i = 0 to 5 do
    Obs.Journal.emit (Obs.Journal.Rejected { node = i; reason = "test" })
  done;
  ignore (Obs.Journal.uninstall ());
  check int "total" 6 (Obs.Journal.total j);
  check int "dropped" 2 (Obs.Journal.dropped j);
  let evs = Obs.Journal.events j in
  check (list int) "sequence numbers keep counting" [ 2; 3; 4; 5 ]
    (List.map fst evs);
  check (list int) "newest events survive" [ 2; 3; 4; 5 ]
    (List.map
       (fun (_, e) ->
         match e with
         | Obs.Journal.Rejected { node; _ } -> node
         | _ -> Alcotest.fail "unexpected event kind")
       evs)

(* --- JSONL round-trip over every event kind --------------------------------- *)

let all_kinds =
  Obs.Journal.
    [
      Run_started { phase = "paredown"; inner = 7 };
      Candidate_started { members = [ 2; 3; 5 ] };
      Fit_check
        { inputs_used = 3; outputs_used = 1; pins_ok = true;
          convex_ok = Some true; fits = true };
      Fit_check
        { inputs_used = 9; outputs_used = 4; pins_ok = false;
          convex_ok = None; fits = false };
      Removed { node = 4; rank = -1; d_in = Some 2; d_out = None };
      Accepted { members = [ 2; 3 ]; shape = "2-in/2-out" };
      Rejected { node = 9; reason = "left_single" };
      Anneal_move
        { move = "grow"; accepted = false; temperature = 0.5; energy = 12.25 };
      Pruned { depth = 3; bins_open = 2; bound = 7.; best = 6. };
      Exhaustive_best { total = 5; cost = 40.5 };
      Deadline_expired { phase = "exhaustive"; budget_s = 0.25; nodes = 4096 };
      Verify_tier { members = [ 1; 2 ]; tier = "bounded"; detail = "depth 6" };
      Cosim_shrink { seed = 11; round = 2; steps = 14 };
      Event_limit { clock = 99; queue_depth = 3; last_node = Some 4 };
      Reliability_scored
        { partitions = 3; trials = 16; severity = 0.125; cache_hit = false };
      Reliability_scored
        { partitions = 3; trials = 0; severity = 0.125; cache_hit = true };
    ]

let test_roundtrip () =
  let j = Obs.Journal.install () in
  List.iter Obs.Journal.emit all_kinds;
  ignore (Obs.Journal.uninstall ());
  let l = load_ok (Obs.Journal.load_string (Obs.Journal.to_jsonl j)) in
  check int "total survives" (List.length all_kinds) l.Obs.Journal.l_total;
  check int "nothing dropped" 0 l.Obs.Journal.l_dropped;
  check bool "no reason on a plain journal" true
    (l.Obs.Journal.l_reason = None);
  check bool "events round-trip exactly" true
    (l.Obs.Journal.l_events = List.mapi (fun i e -> (i, e)) all_kinds)

(* --- Fit-check parity: journal = Paredown stats = metrics ------------------- *)

let test_fit_check_parity () =
  let g = Designs.Library.podium_timer_3.Designs.Design.network in
  let j = Obs.Journal.install () in
  let result, entries = Obs.Metrics.with_scope (fun () -> Core.Paredown.run g) in
  ignore (Obs.Journal.uninstall ());
  let counted =
    match
      List.find_opt
        (fun e -> e.Obs.Metrics.name = "core.paredown.fit_checks")
        entries
    with
    | Some { Obs.Metrics.value = Obs.Metrics.Count n; _ } -> n
    | Some _ | None -> -1
  in
  let l = load_ok (Obs.Journal.load_string (Obs.Journal.to_jsonl j)) in
  let journaled = Obs.Journal.fit_check_count l in
  check int "journal matches Paredown stats"
    result.Core.Paredown.stats.Core.Paredown.fit_checks journaled;
  check int "journal matches metrics counter" counted journaled;
  check_contains "summary reports the same total" (Obs.Journal.summary l)
    (Printf.sprintf "paredown fit checks: %d" journaled)

(* --- --jobs determinism ----------------------------------------------------- *)

let journal_bytes ~jobs seeds =
  Obs.Journal.reset ();
  let j = Obs.Journal.install () in
  ignore
    (Parallel.map ~jobs
       (fun seed ->
         let g =
           Randgen.Generator.generate ~rng:(Prng.create seed) ~inner:8 ()
         in
         ignore (Core.Paredown.run g))
       seeds);
  ignore (Obs.Journal.uninstall ());
  Obs.Journal.to_jsonl j

let jobs_determinism =
  QCheck.Test.make ~count:15
    ~name:"--jobs 1 and --jobs 2 journals are byte-identical"
    QCheck.(list_of_size Gen.(int_range 1 5) small_nat)
    (fun seeds ->
      let a = journal_bytes ~jobs:1 seeds in
      let b = journal_bytes ~jobs:2 seeds in
      Obs.Journal.reset ();
      String.equal a b)

(* --- explain why / diff ----------------------------------------------------- *)

let loaded_of events =
  Obs.Journal.reset ();
  let j = Obs.Journal.install () in
  List.iter Obs.Journal.emit events;
  ignore (Obs.Journal.uninstall ());
  load_ok (Obs.Journal.load_string (Obs.Journal.to_jsonl j))

let test_why () =
  let l =
    loaded_of
      Obs.Journal.
        [
          Candidate_started { members = [ 2; 3; 9 ] };
          Rejected { node = 9; reason = "left_single" };
          Accepted { members = [ 2; 3 ]; shape = "2-in/2-out" };
        ]
  in
  let about_9 = Obs.Journal.why ~node:9 l in
  check_contains "why 9 shows the rejection" about_9 "left_single";
  check_contains "why 9 shows the candidate" about_9 "candidate started";
  check bool "why 9 omits the acceptance" false
    (Testlib.contains about_9 "accepted");
  check_contains "unknown node says so" (Obs.Journal.why ~node:77 l)
    "no recorded decision touched node 77"

let test_diff () =
  let base =
    Obs.Journal.
      [
        Candidate_started { members = [ 2; 3 ] };
        Accepted { members = [ 2; 3 ]; shape = "2-in/2-out" };
      ]
  in
  let a = loaded_of base in
  let b = loaded_of base in
  check_contains "same events are identical" (Obs.Journal.diff a b)
    "identical (2 decisions)";
  let c =
    loaded_of
      Obs.Journal.
        [
          Candidate_started { members = [ 2; 3 ] };
          Rejected { node = 2; reason = "unplaceable" };
        ]
  in
  check_contains "divergence names the first differing seq"
    (Obs.Journal.diff a c) "diverge at seq 1";
  let shorter = loaded_of [ List.hd base ] in
  check_contains "prefix case reports the missing tail"
    (Obs.Journal.diff a shorter) "diverge at seq 1"

(* --- Flight recorder: forced deadline expiry dumps a loadable bundle -------- *)

let test_post_mortem_bundle () =
  let out = Filename.temp_file "paredown-postmortem" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      Obs.Journal.arm_post_mortem ~capacity:512 ~out ();
      let g =
        Randgen.Generator.generate ~rng:(Prng.create 99) ~inner:20 ()
      in
      let r = Core.Exhaustive.run ~deadline_s:0.0 g in
      check bool "search timed out" true
        (r.Core.Exhaustive.outcome = Core.Exhaustive.Timed_out);
      let l = load_ok (Obs.Journal.load_file out) in
      (match l.Obs.Journal.l_reason with
       | Some reason ->
         check_contains "reason names the deadline" reason "deadline"
       | None -> Alcotest.fail "bundle carries no failure reason");
      check bool "deadline event is in the tail" true
        (List.exists
           (fun (_, e) -> Obs.Journal.kind_of_event e = "deadline_expired")
           l.Obs.Journal.l_events);
      check_contains "summary surfaces the post-mortem reason"
        (Obs.Journal.summary l) "post-mortem reason")

(* --- Disabled-path overhead ------------------------------------------------- *)

let test_disabled_overhead () =
  let o = Experiments.Perf.journal_overhead ~iters:200_000 () in
  check bool
    (Printf.sprintf
       "disabled overhead %.5f of the table1 sweep (guard %.2f ns x %d \
        events) stays under 1%%"
       o.Experiments.Perf.ratio o.Experiments.Perf.guard_ns
       o.Experiments.Perf.events)
    true
    (o.Experiments.Perf.ratio <= 0.01)

let () =
  Alcotest.run "journal"
    [
      ( "storage",
        [
          test_case "ring keeps the newest events" `Quick (isolated test_ring);
          test_case "every event kind round-trips through JSONL" `Quick
            (isolated test_roundtrip);
        ] );
      ( "parity",
        [
          test_case "fit checks: journal = stats = metrics" `Quick
            (isolated test_fit_check_parity);
        ] );
      ("determinism", Testlib.qtests [ jobs_determinism ]);
      ( "explain",
        [
          test_case "why filters to one node" `Quick (isolated test_why);
          test_case "diff finds the first divergence" `Quick
            (isolated test_diff);
        ] );
      ( "flight-recorder",
        [
          test_case "deadline expiry writes a loadable bundle" `Quick
            (isolated test_post_mortem_bundle);
        ] );
      ( "overhead",
        [
          test_case "disabled emit guard is under 1% of a sweep" `Quick
            (isolated test_disabled_overhead);
        ] );
    ]
