(* Compiled-vs-interpreted kernel equivalence.

   The compiled kernel (Behavior.Compile closures, dense addressing,
   binary-heap calendar) claims byte-identical observables to the
   interpreted oracle.  These properties hold the two against each other
   on random networks × random stimulus × tie orders × edge delays ×
   fault families × seeds, comparing every observable at once: settled
   observations, output traces, final output values, activation and
   packet counts, fault statistics, the clock, and the full rendered
   telemetry report. *)

module Graph = Netlist.Graph
module Node_id = Netlist.Node_id
module E = Sim.Engine
module F = Sim.Fault
module C = Eblock.Catalog

let check = Alcotest.check
let value = Testlib.value

(* Everything one simulation run can show: if any divergence between the
   kernels is observable at all, it is observable here. *)
let observe ~kernel ?tie_order ?edge_delay ?faults ?(telemetry = false) g
    script =
  let collector = if telemetry then Some (Sim.Telemetry.create ()) else None in
  let engine =
    E.create ~kernel ?tie_order ?edge_delay ?faults ?telemetry:collector g
  in
  let obs = Sim.Stimulus.settled_outputs engine script in
  let report =
    Option.map
      (fun tel -> Obs.Json.to_string (Sim.Telemetry.report_json g tel))
      collector
  in
  ( obs,
    E.trace engine,
    E.output_values engine,
    E.activation_count engine,
    E.packet_count engine,
    E.fault_stats engine,
    E.now engine,
    report )

let kernels_agree ?tie_order ?edge_delay ?faults ?telemetry g script =
  observe ~kernel:E.Interpreted ?tie_order ?edge_delay ?faults ?telemetry g
    script
  = observe ~kernel:E.Compiled ?tie_order ?edge_delay ?faults ?telemetry g
      script

(* --- generators ---------------------------------------------------------- *)

let tie_of_pick pick seed =
  match pick with
  | 0 -> E.Fifo
  | 1 -> E.Lifo
  | _ -> E.Shuffled seed

let family_of_pick pick =
  match pick with
  | 0 -> None
  | 1 -> Some (Reliability.Family.Drop { rate = 0.15 })
  | 2 ->
    Some
      (Reliability.Family.Chaos
         { drop = 0.05; duplicate = 0.1; corrupt = 0.1; jitter = 2 })
  | _ ->
    Some
      (Reliability.Family.Brownout { rate = 0.4; ticks = [ 30; 90; 150 ] })

let case_gen =
  QCheck.Gen.(
    Testlib.network_gen ~max_inner:12 () >>= fun (inner, seed, g) ->
    int_range 0 2 >>= fun tie ->
    int_range 0 3 >>= fun fam ->
    int_range 0 1_000_000 >|= fun script_seed ->
    (inner, seed, g, tie, fam, script_seed))

let case_arbitrary =
  QCheck.make
    ~print:(fun (inner, seed, _, tie, fam, script_seed) ->
      Printf.sprintf "inner=%d seed=%d tie=%d family=%d script_seed=%d" inner
        seed tie fam script_seed)
    case_gen

let script_of g script_seed =
  Sim.Stimulus.random
    ~rng:(Prng.create script_seed)
    ~sensors:(Graph.sensors g) ~steps:10 ~spacing:25

(* Deterministic non-uniform per-edge latency, exercising the delay
   recomputation on both kernels' schedule paths. *)
let bumpy_delay (e : Graph.edge) =
  1 + ((e.Graph.src.Graph.node + (3 * e.Graph.dst.Graph.port)) mod 3)

let prop name count f =
  QCheck.Test.make ~count ~name case_arbitrary f

let equivalence_properties =
  [
    prop "clean runs byte-identical across tie orders" 80
      (fun (_, seed, g, tie, _, script_seed) ->
        kernels_agree ~tie_order:(tie_of_pick tie seed) g
          (script_of g script_seed));
    prop "bumpy edge delays byte-identical" 40
      (fun (_, seed, g, tie, _, script_seed) ->
        kernels_agree ~tie_order:(tie_of_pick tie seed)
          ~edge_delay:bumpy_delay g (script_of g script_seed));
    prop "fault families byte-identical (plans, strikes, stats)" 80
      (fun (_, seed, g, tie, fam, script_seed) ->
        let faults =
          Option.map
            (fun f -> Reliability.Family.plan f ~seed:script_seed g)
            (family_of_pick fam)
        in
        kernels_agree ~tie_order:(tie_of_pick tie seed) ?faults g
          (script_of g script_seed));
    prop "telemetry reports byte-identical" 40
      (fun (_, seed, g, tie, fam, script_seed) ->
        let faults =
          Option.map
            (fun f -> Reliability.Family.plan f ~seed:script_seed g)
            (family_of_pick fam)
        in
        kernels_agree ~tie_order:(tie_of_pick tie seed) ?faults
          ~telemetry:true g (script_of g script_seed));
  ]

(* The per-(node, port) fanout index is defined as a filter of the full
   fanout list; hold the two against each other on random graphs,
   including one out-of-range probe per node. *)
let fanout_index_agrees =
  QCheck.Test.make ~count:200 ~name:"Graph.fanout_on = filtered fanout"
    (Testlib.network_arbitrary ())
    (fun (_, _, g) ->
      List.for_all
        (fun id ->
          let d = Graph.descriptor g id in
          let full = Graph.fanout g id in
          let ports = d.Eblock.Descriptor.n_outputs in
          Graph.fanout_on g id ports = []
          && List.for_all
               (fun port ->
                 let reference =
                   List.filter
                     (fun e -> e.Graph.src.Graph.port = port)
                     full
                 in
                 let indexed = Graph.fanout_on g id port in
                 let iterated = ref [] in
                 Graph.iter_fanout_on g id port (fun e ->
                     iterated := e :: !iterated);
                 indexed = reference && List.rev !iterated = reference)
               (List.init ports Fun.id))
        (Graph.node_ids g))

(* --- kernel selection ----------------------------------------------------- *)

let test_default_kernel () =
  let g, _, _, _ = Testlib.chain [ C.not_gate ] in
  check Alcotest.bool "default is compiled" true
    (E.kernel (E.create g) = E.Compiled);
  check Alcotest.bool "interpreted on request" true
    (E.kernel (E.create ~kernel:E.Interpreted g) = E.Interpreted)

(* --- pinned regressions --------------------------------------------------- *)

(* Re-arming a pending timer must supersede the earlier expiry on both
   kernels: the prolong block re-triggers on every rising input, so
   flips faster than its window must coalesce into one fall.  The trace
   is pinned so a tie-handling or generation-tracking regression in
   either kernel shows up as a concrete diff, not just a cross-kernel
   mismatch. *)
let test_timer_supersession_pinned () =
  let run kernel =
    let g, sensor, _, led = Testlib.chain [ C.prolong ~ticks:10 ] in
    let engine = E.create ~kernel g in
    List.iter
      (fun (time, v) -> E.set_sensor_at engine ~time sensor v)
      [ (1, true); (3, false); (5, true); (7, false); (40, true);
        (42, false) ];
    E.settle engine;
    (E.trace engine, (led : Node_id.t))
  in
  let interp, led = run E.Interpreted in
  let compiled, _ = run E.Compiled in
  check
    (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int value))
    "kernels agree" interp compiled;
  check
    (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int value))
    "pinned supersession trace"
    [ (3, led, Bool true); (19, led, Bool false); (42, led, Bool true);
      (54, led, Bool false) ]
    compiled

(* A brownout mid-run wipes a toggle's state on both kernels: same
   trace, same reset accounting, pinned. *)
let test_brownout_reset_pinned () =
  let run kernel =
    let g, sensor, inner, led = Testlib.chain [ C.toggle ] in
    let toggle = List.hd inner in
    let faults =
      { F.none with
        node_faults =
          [ (toggle, { F.no_node_fault with reset_at = [ 25 ] }) ];
      }
    in
    let engine = E.create ~kernel ~faults g in
    List.iter
      (fun (time, v) -> E.set_sensor_at engine ~time sensor v)
      [ (1, true); (10, false); (30, true); (40, false) ];
    E.settle engine;
    ( E.trace engine,
      (match E.fault_stats engine with Some s -> s.F.resets | None -> -1),
      (led : Node_id.t) )
  in
  let i_trace, i_resets, led = run E.Interpreted in
  let c_trace, c_resets, _ = run E.Compiled in
  check
    (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int value))
    "kernels agree" i_trace c_trace;
  check Alcotest.int "one reset on both" i_resets c_resets;
  check Alcotest.int "pinned reset count" 1 c_resets;
  check
    (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int value))
    "pinned brownout trace"
    [ (3, led, Bool true); (26, led, Bool false); (32, led, Bool true) ]
    c_trace

(* Error surfaces must not depend on the kernel either. *)
let test_event_limit_agrees () =
  let g, a = Graph.add Graph.empty C.button in
  let g, blink = Graph.add g (C.blinker ~period:4) in
  let g, led = Graph.add g C.led in
  let g = Graph.connect g ~src:(a, 0) ~dst:(blink, 0) in
  let g = Graph.connect g ~src:(blink, 0) ~dst:(led, 0) in
  let probe kernel =
    let engine = E.create ~kernel g in
    E.set_sensor engine a true;
    match E.settle ~limit:200 engine with
    | () -> Alcotest.fail "oscillator settled?"
    | exception E.Event_limit_exceeded { clock; queue_depth; last_node } ->
      (clock, queue_depth, last_node)
  in
  let i = probe E.Interpreted and c = probe E.Compiled in
  check
    (Alcotest.triple Alcotest.int Alcotest.int (Alcotest.option Alcotest.int))
    "limit context agrees" i c

let () =
  Alcotest.run "kernel"
    [
      ("equivalence", Testlib.qtests equivalence_properties);
      ("fanout index", Testlib.qtests [ fanout_index_agrees ]);
      ( "selection",
        [ Alcotest.test_case "default + override" `Quick test_default_kernel ]
      );
      ( "pinned",
        [
          Alcotest.test_case "timer supersession" `Quick
            test_timer_supersession_pinned;
          Alcotest.test_case "brownout reset" `Quick
            test_brownout_reset_pinned;
          Alcotest.test_case "event limit context" `Quick
            test_event_limit_agrees;
        ] );
    ]
