(* The observability layer: clock, metrics registry, span tracer,
   Chrome trace JSON, and the instrumented-pipeline invariants —
   most importantly the §4.2 claim that PareDown performs exactly
   n(n+1)/2 fit checks on the worst-case family, asserted through the
   global counter. *)

let fit_checks_counter = "core.paredown.fit_checks"

let counter_value name =
  match Obs.Metrics.find name with
  | Some { Obs.Metrics.value = Obs.Metrics.Count n; _ } -> n
  | Some _ -> Alcotest.failf "%s is not a counter" name
  | None -> Alcotest.failf "counter %s not registered" name

(* ------------------------------------------------------------------ *)
(* Clock *)

let test_clock_monotonic () =
  let rec loop i prev =
    if i < 1000 then begin
      let t = Obs.Clock.now_ns () in
      if Int64.compare t prev < 0 then
        Alcotest.failf "clock went backwards: %Ld then %Ld" prev t;
      loop (i + 1) t
    end
  in
  loop 0 (Obs.Clock.now_ns ());
  Alcotest.(check bool) "elapsed is nonnegative" true
    (Obs.Clock.elapsed_s (Obs.Clock.now_ns ()) >= 0.)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_counter_arithmetic () =
  let c = Obs.Metrics.counter "test.obs.counter" in
  let base = Obs.Metrics.counter_value c in
  Obs.Metrics.incr c;
  Obs.Metrics.incr c;
  Obs.Metrics.add c 40;
  Alcotest.(check int) "incr/add accumulate" (base + 42)
    (Obs.Metrics.counter_value c);
  let c' = Obs.Metrics.counter "test.obs.counter" in
  Obs.Metrics.incr c';
  Alcotest.(check int) "registration is idempotent (same cell)"
    (base + 43) (Obs.Metrics.counter_value c)

let test_gauge_and_snapshot () =
  let g = Obs.Metrics.gauge "test.obs.gauge" ~doc:"a gauge" in
  Obs.Metrics.set g 1.5;
  Alcotest.(check (float 0.)) "gauge holds last value" 1.5
    (Obs.Metrics.gauge_value g);
  (match Obs.Metrics.find "test.obs.gauge" with
   | Some { Obs.Metrics.value = Obs.Metrics.Value v; doc; _ } ->
     Alcotest.(check (float 0.)) "snapshot sees the gauge" 1.5 v;
     Alcotest.(check string) "doc is kept" "a gauge" doc
   | Some _ | None -> Alcotest.fail "gauge not found in registry");
  let names = List.map (fun e -> e.Obs.Metrics.name)
      (Obs.Metrics.snapshot ~prefix:"test.obs." ()) in
  Alcotest.(check bool) "snapshot is name-sorted" true
    (names = List.sort compare names);
  Alcotest.(check bool) "prefix filters" true
    (List.for_all (String.starts_with ~prefix:"test.obs.") names)

let test_kind_clash_rejected () =
  let _ = Obs.Metrics.counter "test.obs.clash" in
  Alcotest.check_raises "counter name cannot become a gauge"
    (Invalid_argument "Obs.Metrics.gauge: \"test.obs.clash\" is a counter")
    (fun () -> ignore (Obs.Metrics.gauge "test.obs.clash"))

(* ------------------------------------------------------------------ *)
(* Tracer *)

(* A sink that records raw boundary events for structural checks. *)
let recording_sink log =
  {
    Obs.Trace.start_span =
      (fun ~name ~args:_ ~ts_ns:_ -> log := ("B", name) :: !log);
    end_span = (fun ~name ~ts_ns:_ -> log := ("E", name) :: !log);
    instant = (fun ~name ~args:_ ~ts_ns:_ -> log := ("i", name) :: !log);
    flush = ignore;
  }

let test_span_nesting_and_balance () =
  let log = ref [] in
  Obs.Trace.set_sink (recording_sink log);
  let inner_depth = ref (-1) in
  Obs.Trace.with_span "outer" (fun () ->
      Obs.Trace.with_span "inner" (fun () ->
          inner_depth := Obs.Trace.depth ());
      Obs.Trace.instant "mark");
  Obs.Trace.reset ();
  Alcotest.(check int) "depth inside two spans" 2 !inner_depth;
  Alcotest.(check int) "depth balanced after" 0 (Obs.Trace.depth ());
  Alcotest.(check (list (pair string string)))
    "events are properly nested"
    [ ("B", "outer"); ("B", "inner"); ("E", "inner"); ("i", "mark");
      ("E", "outer") ]
    (List.rev !log)

let test_span_closed_on_exception () =
  let log = ref [] in
  Obs.Trace.set_sink (recording_sink log);
  (try
     Obs.Trace.with_span "doomed" (fun () -> failwith "boom")
   with Failure _ -> ());
  Obs.Trace.reset ();
  Alcotest.(check int) "depth balanced after exception" 0 (Obs.Trace.depth ());
  Alcotest.(check (list (pair string string)))
    "span still closed" [ ("B", "doomed"); ("E", "doomed") ] (List.rev !log)

let test_null_sink_is_default_and_cheap () =
  Obs.Trace.reset ();
  Alcotest.(check bool) "disabled by default" false (Obs.Trace.enabled ());
  (* spans must still run their body and return its value *)
  Alcotest.(check int) "body runs" 7
    (Obs.Trace.with_span "off" (fun () -> 7));
  Alcotest.(check int) "no depth tracked when off" 0 (Obs.Trace.depth ())

(* ------------------------------------------------------------------ *)
(* Chrome trace JSON *)

(* A strict-enough JSON validator (objects, arrays, strings with
   escapes, numbers, literals) — no JSON library is vendored, and the
   trace format is exactly this subset. *)
let validate_json s =
  let n = String.length s in
  let fail i msg = Alcotest.failf "invalid JSON at byte %d: %s" i msg in
  let rec skip_ws i =
    if i < n && (s.[i] = ' ' || s.[i] = '\n' || s.[i] = '\t' || s.[i] = '\r')
    then skip_ws (i + 1)
    else i
  in
  let rec value i =
    let i = skip_ws i in
    if i >= n then fail i "eof"
    else
      match s.[i] with
      | '{' -> obj (skip_ws (i + 1)) true
      | '[' -> arr (skip_ws (i + 1)) true
      | '"' -> string_lit (i + 1)
      | 't' -> lit i "true"
      | 'f' -> lit i "false"
      | 'n' -> lit i "null"
      | '-' | '0' .. '9' -> number i
      | c -> fail i (Printf.sprintf "unexpected %C" c)
  and lit i word =
    let l = String.length word in
    if i + l <= n && String.sub s i l = word then i + l
    else fail i ("expected " ^ word)
  and number i =
    let j = ref (if s.[i] = '-' then i + 1 else i) in
    let digits start =
      let k = ref start in
      while !k < n && s.[!k] >= '0' && s.[!k] <= '9' do incr k done;
      if !k = start then fail start "digit expected";
      !k
    in
    j := digits !j;
    if !j < n && s.[!j] = '.' then j := digits (!j + 1);
    if !j < n && (s.[!j] = 'e' || s.[!j] = 'E') then begin
      let k = !j + 1 in
      let k = if k < n && (s.[k] = '+' || s.[k] = '-') then k + 1 else k in
      j := digits k
    end;
    !j
  and string_lit i =
    if i >= n then fail i "unterminated string"
    else
      match s.[i] with
      | '"' -> i + 1
      | '\\' ->
        if i + 1 >= n then fail i "dangling escape"
        else
          (match s.[i + 1] with
           | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' ->
             string_lit (i + 2)
           | 'u' ->
             if i + 5 < n then string_lit (i + 6) else fail i "short \\u"
           | c -> fail i (Printf.sprintf "bad escape %C" c))
      | c when Char.code c < 0x20 -> fail i "raw control char in string"
      | _ -> string_lit (i + 1)
  and obj i first =
    if i < n && s.[i] = '}' then i + 1
    else begin
      let i = if first then i else i in
      let i = skip_ws i in
      if i >= n || s.[i] <> '"' then fail i "object key expected";
      let i = skip_ws (string_lit (i + 1)) in
      if i >= n || s.[i] <> ':' then fail i "colon expected";
      let i = skip_ws (value (i + 1)) in
      if i < n && s.[i] = ',' then obj (skip_ws (i + 1)) false
      else if i < n && s.[i] = '}' then i + 1
      else fail i "comma or } expected"
    end
  and arr i first =
    if i < n && s.[i] = ']' then i + 1
    else begin
      ignore first;
      let i = skip_ws (value i) in
      if i < n && s.[i] = ',' then arr (skip_ws (i + 1)) false
      else if i < n && s.[i] = ']' then i + 1
      else fail i "comma or ] expected"
    end
  in
  let i = skip_ws (value 0) in
  if skip_ws i <> n then fail i "trailing garbage"

let test_chrome_json_well_formed () =
  let r = Obs.Chrome.create () in
  Obs.Trace.set_sink (Obs.Chrome.sink r);
  (* adversarial names/args: quotes, backslashes, newlines, controls *)
  Obs.Trace.with_span "outer \"quoted\"" ~args:[ ("k\\", "v\n\t\x01") ]
    (fun () ->
      Obs.Trace.instant "mark" ~args:[ ("a", "1"); ("b", "{}[]") ];
      Obs.Trace.with_span "inner" (fun () -> ()));
  Obs.Trace.reset ();
  let json = Obs.Chrome.contents r in
  validate_json json;
  Alcotest.(check int) "5 events recorded" 5 (Obs.Chrome.event_count r);
  Alcotest.(check bool) "B/E phases present" true
    (Testlib.contains json "\"ph\":\"B\"" && Testlib.contains json "\"ph\":\"E\"");
  Alcotest.(check bool) "instant phase present" true
    (Testlib.contains json "\"ph\":\"i\"")

let test_chrome_empty_recording_valid () =
  let r = Obs.Chrome.create () in
  validate_json (Obs.Chrome.contents r)

let test_paredown_run_traces_spans () =
  let r = Obs.Chrome.create () in
  Obs.Trace.set_sink (Obs.Chrome.sink r);
  ignore (Core.Paredown.run Testlib.podium);
  Obs.Trace.reset ();
  let json = Obs.Chrome.contents r in
  validate_json json;
  Alcotest.(check bool) "paredown.run span recorded" true
    (Testlib.contains json "\"name\":\"paredown.run\"")

(* ------------------------------------------------------------------ *)
(* The instrumented pipeline: §4.2 closed form via the counter *)

let test_fit_check_counter_matches_closed_form () =
  List.iter
    (fun n ->
      let g = Randgen.Generator.worst_case ~inner:n in
      let before = counter_value fit_checks_counter in
      let r = Core.Paredown.run g in
      let counted = counter_value fit_checks_counter - before in
      let expected = n * (n + 1) / 2 in
      Alcotest.(check int)
        (Printf.sprintf "counter delta = n(n+1)/2 for n=%d" n)
        expected counted;
      Alcotest.(check int)
        (Printf.sprintf "counter agrees with per-run stats for n=%d" n)
        r.Core.Paredown.stats.Core.Paredown.fit_checks counted)
    [ 3; 5; 10; 20; 40 ]

let test_scale_worst_case_reports_closed_form () =
  let points = Experiments.Scale.run_worst_case ~sizes:[ 5; 10 ] () in
  List.iter
    (fun p ->
      Alcotest.(check (option int)) "expected column is the closed form"
        (Some (Experiments.Scale.closed_form p.Experiments.Scale.inner))
        p.Experiments.Scale.expected_fit_checks;
      Alcotest.(check (option int)) "measured equals closed form"
        (Some p.Experiments.Scale.fit_checks)
        p.Experiments.Scale.expected_fit_checks)
    points;
  Alcotest.(check bool) "table carries the ok mark" true
    (Testlib.contains (Experiments.Scale.to_table points) "ok")

let test_exhaustive_deadline_counter () =
  let before = counter_value "core.exhaustive.deadline_hits" in
  (* 14 inner blocks exhaustively with a ~zero deadline must time out *)
  let g =
    Randgen.Generator.generate ~rng:(Prng.create 5) ~inner:14 ()
  in
  let r = Core.Exhaustive.run ~deadline_s:0.0 g in
  Alcotest.(check bool) "search timed out" true
    (r.Core.Exhaustive.outcome = Core.Exhaustive.Timed_out);
  Alcotest.(check int) "deadline hit counted" (before + 1)
    (counter_value "core.exhaustive.deadline_hits")

let test_sim_packet_counter_tracks_engine () =
  let before = counter_value "sim.packets_sent" in
  let g = Testlib.podium in
  let engine = Sim.Engine.create g in
  let script =
    Sim.Stimulus.random ~rng:(Prng.create 3)
      ~sensors:(Netlist.Graph.sensors g) ~steps:10 ~spacing:10
  in
  ignore (Sim.Stimulus.settled_outputs engine script);
  let sent = counter_value "sim.packets_sent" - before in
  Alcotest.(check int) "global counter matches the engine's own count"
    (Sim.Engine.packet_count engine) sent;
  Alcotest.(check bool) "some packets flowed" true (sent > 0)

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic ] );
      ( "metrics",
        [
          Alcotest.test_case "counter arithmetic" `Quick
            test_counter_arithmetic;
          Alcotest.test_case "gauge and snapshot" `Quick
            test_gauge_and_snapshot;
          Alcotest.test_case "kind clash rejected" `Quick
            test_kind_clash_rejected;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting and balance" `Quick
            test_span_nesting_and_balance;
          Alcotest.test_case "closed on exception" `Quick
            test_span_closed_on_exception;
          Alcotest.test_case "null sink default" `Quick
            test_null_sink_is_default_and_cheap;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "well-formed JSON" `Quick
            test_chrome_json_well_formed;
          Alcotest.test_case "empty recording" `Quick
            test_chrome_empty_recording_valid;
          Alcotest.test_case "paredown spans" `Quick
            test_paredown_run_traces_spans;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "fit checks = n(n+1)/2 (worst case)" `Quick
            test_fit_check_counter_matches_closed_form;
          Alcotest.test_case "scale table closed form" `Quick
            test_scale_worst_case_reports_closed_form;
          Alcotest.test_case "exhaustive deadline hits" `Quick
            test_exhaustive_deadline_counter;
          Alcotest.test_case "sim packet counter" `Quick
            test_sim_packet_counter_tracks_engine;
        ] );
    ]
