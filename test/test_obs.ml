(* The observability layer: clock, metrics registry, span tracer,
   Chrome trace JSON, and the instrumented-pipeline invariants —
   most importantly the §4.2 claim that PareDown performs exactly
   n(n+1)/2 fit checks on the worst-case family, asserted through the
   global counter. *)

let fit_checks_counter = "core.paredown.fit_checks"

let counter_value name =
  match Obs.Metrics.find name with
  | Some { Obs.Metrics.value = Obs.Metrics.Count n; _ } -> n
  | Some _ -> Alcotest.failf "%s is not a counter" name
  | None -> Alcotest.failf "counter %s not registered" name

(* ------------------------------------------------------------------ *)
(* Clock *)

let test_clock_monotonic () =
  let rec loop i prev =
    if i < 1000 then begin
      let t = Obs.Clock.now_ns () in
      if Int64.compare t prev < 0 then
        Alcotest.failf "clock went backwards: %Ld then %Ld" prev t;
      loop (i + 1) t
    end
  in
  loop 0 (Obs.Clock.now_ns ());
  Alcotest.(check bool) "elapsed is nonnegative" true
    (Obs.Clock.elapsed_s (Obs.Clock.now_ns ()) >= 0.)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_counter_arithmetic () =
  let c = Obs.Metrics.counter "test.obs.counter" in
  let base = Obs.Metrics.counter_value c in
  Obs.Metrics.incr c;
  Obs.Metrics.incr c;
  Obs.Metrics.add c 40;
  Alcotest.(check int) "incr/add accumulate" (base + 42)
    (Obs.Metrics.counter_value c);
  let c' = Obs.Metrics.counter "test.obs.counter" in
  Obs.Metrics.incr c';
  Alcotest.(check int) "registration is idempotent (same cell)"
    (base + 43) (Obs.Metrics.counter_value c)

let test_gauge_and_snapshot () =
  let g = Obs.Metrics.gauge "test.obs.gauge" ~doc:"a gauge" in
  Obs.Metrics.set g 1.5;
  Alcotest.(check (float 0.)) "gauge holds last value" 1.5
    (Obs.Metrics.gauge_value g);
  (match Obs.Metrics.find "test.obs.gauge" with
   | Some { Obs.Metrics.value = Obs.Metrics.Value v; doc; _ } ->
     Alcotest.(check (float 0.)) "snapshot sees the gauge" 1.5 v;
     Alcotest.(check string) "doc is kept" "a gauge" doc
   | Some _ | None -> Alcotest.fail "gauge not found in registry");
  let names = List.map (fun e -> e.Obs.Metrics.name)
      (Obs.Metrics.snapshot ~prefix:"test.obs." ()) in
  Alcotest.(check bool) "snapshot is name-sorted" true
    (names = List.sort compare names);
  Alcotest.(check bool) "prefix filters" true
    (List.for_all (String.starts_with ~prefix:"test.obs.") names)

let test_kind_clash_rejected () =
  let _ = Obs.Metrics.counter "test.obs.clash" in
  Alcotest.check_raises "counter name cannot become a gauge"
    (Invalid_argument "Obs.Metrics.gauge: \"test.obs.clash\" is a counter")
    (fun () -> ignore (Obs.Metrics.gauge "test.obs.clash"))

(* ------------------------------------------------------------------ *)
(* Tracer *)

(* A sink that records raw boundary events for structural checks. *)
let recording_sink log =
  {
    Obs.Trace.start_span =
      (fun ~name ~args:_ ~ts_ns:_ -> log := ("B", name) :: !log);
    end_span = (fun ~name ~ts_ns:_ -> log := ("E", name) :: !log);
    instant = (fun ~name ~args:_ ~ts_ns:_ -> log := ("i", name) :: !log);
    flush = ignore;
  }

let test_span_nesting_and_balance () =
  let log = ref [] in
  Obs.Trace.set_sink (recording_sink log);
  let inner_depth = ref (-1) in
  Obs.Trace.with_span "outer" (fun () ->
      Obs.Trace.with_span "inner" (fun () ->
          inner_depth := Obs.Trace.depth ());
      Obs.Trace.instant "mark");
  Obs.Trace.reset ();
  Alcotest.(check int) "depth inside two spans" 2 !inner_depth;
  Alcotest.(check int) "depth balanced after" 0 (Obs.Trace.depth ());
  Alcotest.(check (list (pair string string)))
    "events are properly nested"
    [ ("B", "outer"); ("B", "inner"); ("E", "inner"); ("i", "mark");
      ("E", "outer") ]
    (List.rev !log)

let test_span_closed_on_exception () =
  let log = ref [] in
  Obs.Trace.set_sink (recording_sink log);
  (try
     Obs.Trace.with_span "doomed" (fun () -> failwith "boom")
   with Failure _ -> ());
  Obs.Trace.reset ();
  Alcotest.(check int) "depth balanced after exception" 0 (Obs.Trace.depth ());
  Alcotest.(check (list (pair string string)))
    "span still closed" [ ("B", "doomed"); ("E", "doomed") ] (List.rev !log)

let test_null_sink_is_default_and_cheap () =
  Obs.Trace.reset ();
  Alcotest.(check bool) "disabled by default" false (Obs.Trace.enabled ());
  (* spans must still run their body and return its value *)
  Alcotest.(check int) "body runs" 7
    (Obs.Trace.with_span "off" (fun () -> 7));
  Alcotest.(check int) "no depth tracked when off" 0 (Obs.Trace.depth ())

(* ------------------------------------------------------------------ *)
(* Chrome trace JSON *)

(* A strict-enough JSON validator (objects, arrays, strings with
   escapes, numbers, literals) — no JSON library is vendored, and the
   trace format is exactly this subset. *)
let validate_json s =
  let n = String.length s in
  let fail i msg = Alcotest.failf "invalid JSON at byte %d: %s" i msg in
  let rec skip_ws i =
    if i < n && (s.[i] = ' ' || s.[i] = '\n' || s.[i] = '\t' || s.[i] = '\r')
    then skip_ws (i + 1)
    else i
  in
  let rec value i =
    let i = skip_ws i in
    if i >= n then fail i "eof"
    else
      match s.[i] with
      | '{' -> obj (skip_ws (i + 1)) true
      | '[' -> arr (skip_ws (i + 1)) true
      | '"' -> string_lit (i + 1)
      | 't' -> lit i "true"
      | 'f' -> lit i "false"
      | 'n' -> lit i "null"
      | '-' | '0' .. '9' -> number i
      | c -> fail i (Printf.sprintf "unexpected %C" c)
  and lit i word =
    let l = String.length word in
    if i + l <= n && String.sub s i l = word then i + l
    else fail i ("expected " ^ word)
  and number i =
    let j = ref (if s.[i] = '-' then i + 1 else i) in
    let digits start =
      let k = ref start in
      while !k < n && s.[!k] >= '0' && s.[!k] <= '9' do incr k done;
      if !k = start then fail start "digit expected";
      !k
    in
    j := digits !j;
    if !j < n && s.[!j] = '.' then j := digits (!j + 1);
    if !j < n && (s.[!j] = 'e' || s.[!j] = 'E') then begin
      let k = !j + 1 in
      let k = if k < n && (s.[k] = '+' || s.[k] = '-') then k + 1 else k in
      j := digits k
    end;
    !j
  and string_lit i =
    if i >= n then fail i "unterminated string"
    else
      match s.[i] with
      | '"' -> i + 1
      | '\\' ->
        if i + 1 >= n then fail i "dangling escape"
        else
          (match s.[i + 1] with
           | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' ->
             string_lit (i + 2)
           | 'u' ->
             if i + 5 < n then string_lit (i + 6) else fail i "short \\u"
           | c -> fail i (Printf.sprintf "bad escape %C" c))
      | c when Char.code c < 0x20 -> fail i "raw control char in string"
      | _ -> string_lit (i + 1)
  and obj i first =
    if i < n && s.[i] = '}' then i + 1
    else begin
      let i = if first then i else i in
      let i = skip_ws i in
      if i >= n || s.[i] <> '"' then fail i "object key expected";
      let i = skip_ws (string_lit (i + 1)) in
      if i >= n || s.[i] <> ':' then fail i "colon expected";
      let i = skip_ws (value (i + 1)) in
      if i < n && s.[i] = ',' then obj (skip_ws (i + 1)) false
      else if i < n && s.[i] = '}' then i + 1
      else fail i "comma or } expected"
    end
  and arr i first =
    if i < n && s.[i] = ']' then i + 1
    else begin
      ignore first;
      let i = skip_ws (value i) in
      if i < n && s.[i] = ',' then arr (skip_ws (i + 1)) false
      else if i < n && s.[i] = ']' then i + 1
      else fail i "comma or ] expected"
    end
  in
  let i = skip_ws (value 0) in
  if skip_ws i <> n then fail i "trailing garbage"

let test_chrome_json_well_formed () =
  let r = Obs.Chrome.create () in
  Obs.Trace.set_sink (Obs.Chrome.sink r);
  (* adversarial names/args: quotes, backslashes, newlines, controls *)
  Obs.Trace.with_span "outer \"quoted\"" ~args:[ ("k\\", "v\n\t\x01") ]
    (fun () ->
      Obs.Trace.instant "mark" ~args:[ ("a", "1"); ("b", "{}[]") ];
      Obs.Trace.with_span "inner" (fun () -> ()));
  Obs.Trace.reset ();
  let json = Obs.Chrome.contents r in
  validate_json json;
  Alcotest.(check int) "5 events recorded" 5 (Obs.Chrome.event_count r);
  Alcotest.(check bool) "B/E phases present" true
    (Testlib.contains json "\"ph\":\"B\"" && Testlib.contains json "\"ph\":\"E\"");
  Alcotest.(check bool) "instant phase present" true
    (Testlib.contains json "\"ph\":\"i\"")

let test_chrome_empty_recording_valid () =
  let r = Obs.Chrome.create () in
  validate_json (Obs.Chrome.contents r)

let test_chrome_nested_same_timestamp () =
  (* Nested spans and instants interleaved at one timestamp: drive the
     sink directly so every event carries the identical ts, as happens
     when spans close faster than the clock granularity. *)
  let r = Obs.Chrome.create () in
  let s = Obs.Chrome.sink r in
  let ts = Obs.Clock.now_ns () in
  s.Obs.Trace.start_span ~name:"outer" ~args:[] ~ts_ns:ts;
  s.Obs.Trace.instant ~name:"mark-1" ~args:[ ("k", "v") ] ~ts_ns:ts;
  s.Obs.Trace.start_span ~name:"inner" ~args:[] ~ts_ns:ts;
  s.Obs.Trace.instant ~name:"mark-2" ~args:[] ~ts_ns:ts;
  s.Obs.Trace.end_span ~name:"inner" ~ts_ns:ts;
  s.Obs.Trace.end_span ~name:"outer" ~ts_ns:ts;
  let json = Obs.Chrome.contents r in
  validate_json json;
  match Obs.Json.of_string json with
  | Error msg -> Alcotest.failf "chrome document does not parse: %s" msg
  | Ok (Obs.Json.Arr events) ->
    Alcotest.(check int) "6 events" 6 (List.length events);
    let phase e =
      match Option.bind (Obs.Json.member "ph" e) Obs.Json.to_str with
      | Some p -> p
      | None -> Alcotest.fail "event without ph"
    in
    let count p = List.length (List.filter (fun e -> phase e = p) events) in
    Alcotest.(check int) "balanced B/E" (count "B") (count "E");
    Alcotest.(check int) "2 opens" 2 (count "B");
    Alcotest.(check int) "2 instants" 2 (count "i");
    let ts_values =
      List.filter_map
        (fun e -> Option.bind (Obs.Json.member "ts" e) Obs.Json.to_float)
        events
    in
    Alcotest.(check int) "every event has a ts" 6 (List.length ts_values);
    List.iter
      (fun v ->
        Alcotest.(check (float 0.)) "identical timestamps"
          (List.hd ts_values) v)
      ts_values
  | Ok _ -> Alcotest.fail "chrome document is not a JSON array"

(* Property: whatever the span names, arg keys, and arg values contain
   — any byte 0x00-0xff — the emitted document parses. *)
let test_chrome_escaping_property =
  let any_string = QCheck.string_gen QCheck.Gen.char in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"chrome JSON parses for any strings"
       QCheck.(triple any_string any_string any_string)
       (fun (name, key, value) ->
         let r = Obs.Chrome.create () in
         Obs.Trace.set_sink (Obs.Chrome.sink r);
         Obs.Trace.with_span name ~args:[ (key, value) ] (fun () ->
             Obs.Trace.instant value ~args:[ (name, key) ]);
         Obs.Trace.reset ();
         let json = Obs.Chrome.contents r in
         match Obs.Json.of_string json with
         | Ok _ -> validate_json json; true
         | Error msg ->
           QCheck.Test.fail_reportf "does not parse: %s\n%s" msg json))

let test_paredown_run_traces_spans () =
  let r = Obs.Chrome.create () in
  Obs.Trace.set_sink (Obs.Chrome.sink r);
  ignore (Core.Paredown.run Testlib.podium);
  Obs.Trace.reset ();
  let json = Obs.Chrome.contents r in
  validate_json json;
  Alcotest.(check bool) "paredown.run span recorded" true
    (Testlib.contains json "\"name\":\"paredown.run\"")

(* ------------------------------------------------------------------ *)
(* Histograms *)

let test_histogram_statistics () =
  let h = Obs.Histogram.create () in
  for i = 1 to 1000 do
    Obs.Histogram.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-6)) "sum is exact" 500500. (Obs.Histogram.sum h);
  Alcotest.(check (float 1e-6)) "mean is exact" 500.5 (Obs.Histogram.mean h);
  Alcotest.(check (float 0.)) "min is exact" 1. (Obs.Histogram.min_value h);
  Alcotest.(check (float 0.)) "max is exact" 1000. (Obs.Histogram.max_value h);
  (* log buckets at 4 sub-buckets/octave: quantiles within ~19% *)
  let within p expected =
    let v = Obs.Histogram.percentile h p in
    let err = Float.abs (v -. expected) /. expected in
    if err > 0.19 then
      Alcotest.failf "p%g = %g, more than 19%% from %g" p v expected
  in
  within 50. 500.;
  within 90. 900.;
  within 99. 990.;
  Alcotest.(check (float 0.)) "p0 clamps to min" 1.
    (Obs.Histogram.percentile h 0.);
  Alcotest.(check (float 0.)) "p100 clamps to max" 1000.
    (Obs.Histogram.percentile h 100.)

let test_histogram_empty_and_clear () =
  let h = Obs.Histogram.create () in
  Alcotest.(check int) "empty count" 0 (Obs.Histogram.count h);
  Alcotest.(check (float 0.)) "empty percentile" 0.
    (Obs.Histogram.percentile h 99.);
  Obs.Histogram.observe h 5.;
  Obs.Histogram.clear h;
  Alcotest.(check int) "cleared" 0 (Obs.Histogram.count h);
  let s = Obs.Histogram.summary h in
  Alcotest.(check int) "summary of empty" 0 s.Obs.Histogram.s_count

let test_histogram_diff () =
  let h = Obs.Histogram.create () in
  Obs.Histogram.observe h 10.;
  Obs.Histogram.observe h 20.;
  let before = Obs.Histogram.copy h in
  Obs.Histogram.observe h 30.;
  Obs.Histogram.observe h 40.;
  Obs.Histogram.observe h 50.;
  let d = Obs.Histogram.diff ~before h in
  Alcotest.(check int) "diff count" 3 (Obs.Histogram.count d);
  Alcotest.(check (float 1e-6)) "diff sum" 120. (Obs.Histogram.sum d);
  (* min/max of a diff are bucket-resolution approximations *)
  let rel a b = Float.abs (a -. b) /. b in
  Alcotest.(check bool) "diff min near 30" true
    (rel (Obs.Histogram.min_value d) 30. < 0.19);
  Alcotest.(check bool) "diff max near 50" true
    (rel (Obs.Histogram.max_value d) 50. < 0.19);
  (* an empty before diffs exactly *)
  let d0 = Obs.Histogram.diff ~before:(Obs.Histogram.create ()) h in
  Alcotest.(check int) "diff against empty is a copy" 5
    (Obs.Histogram.count d0)

let test_histogram_time_and_registry () =
  let h = Obs.Metrics.histogram "test.obs.hist_ns" ~doc:"a latency" in
  let h' = Obs.Metrics.histogram "test.obs.hist_ns" in
  let x = Obs.Histogram.time h (fun () -> 42) in
  Alcotest.(check int) "time returns the body's value" 42 x;
  Alcotest.(check int) "registration is idempotent (same cell)" 1
    (Obs.Histogram.count h');
  (match Obs.Metrics.find "test.obs.hist_ns" with
   | Some { Obs.Metrics.value = Obs.Metrics.Dist s; _ } ->
     Alcotest.(check int) "registry sees the observation" 1
       s.Obs.Histogram.s_count
   | Some _ | None -> Alcotest.fail "histogram not found in registry");
  let table = Obs.Metrics.to_table ~prefix:"test.obs.hist" () in
  Alcotest.(check bool) "table has percentile columns" true
    (Testlib.contains table "p50" && Testlib.contains table "p99");
  Alcotest.(check bool) "table names the histogram" true
    (Testlib.contains table "test.obs.hist_ns");
  Alcotest.check_raises "histogram name cannot become a counter"
    (Invalid_argument
       "Obs.Metrics.counter: \"test.obs.hist_ns\" is a histogram")
    (fun () -> ignore (Obs.Metrics.counter "test.obs.hist_ns"))

(* Histogram.merge laws: the telemetry collector's determinism argument
   (doc/network-telemetry.md) rests on merge being associative and
   commutative on every statistic the reports read, so fold order over
   Monte-Carlo trials cannot matter. *)

let histogram_of values =
  let h = Obs.Histogram.create () in
  List.iter (Obs.Histogram.observe h) values;
  h

(* Observations spanning bucket 0, the mid octaves, and values whose
   float sums stay exact (small integers), like the collector's tick
   latencies and packet counts. *)
let arbitrary_observations =
  QCheck.list_of_size (QCheck.Gen.int_range 0 40)
    (QCheck.map float_of_int (QCheck.int_range 0 5000))

let same_reading label a b =
  let eq =
    Obs.Histogram.count a = Obs.Histogram.count b
    && Obs.Histogram.sum a = Obs.Histogram.sum b
    && Obs.Histogram.min_value a = Obs.Histogram.min_value b
    && Obs.Histogram.max_value a = Obs.Histogram.max_value b
    && Obs.Histogram.bucket_counts a = Obs.Histogram.bucket_counts b
  in
  if not eq then
    QCheck.Test.fail_reportf
      "%s: count %d/%d sum %g/%g min %g/%g max %g/%g" label
      (Obs.Histogram.count a) (Obs.Histogram.count b)
      (Obs.Histogram.sum a) (Obs.Histogram.sum b)
      (Obs.Histogram.min_value a) (Obs.Histogram.min_value b)
      (Obs.Histogram.max_value a) (Obs.Histogram.max_value b);
  true

let test_histogram_merge_commutative =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"merge is commutative"
       QCheck.(pair arbitrary_observations arbitrary_observations)
       (fun (xs, ys) ->
         let a = histogram_of xs and b = histogram_of ys in
         same_reading "a+b vs b+a" (Obs.Histogram.merge a b)
           (Obs.Histogram.merge b a)))

let test_histogram_merge_associative =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"merge is associative"
       QCheck.(
         triple arbitrary_observations arbitrary_observations
           arbitrary_observations)
       (fun (xs, ys, zs) ->
         let a = histogram_of xs
         and b = histogram_of ys
         and c = histogram_of zs in
         same_reading "(a+b)+c vs a+(b+c)"
           (Obs.Histogram.merge (Obs.Histogram.merge a b) c)
           (Obs.Histogram.merge a (Obs.Histogram.merge b c))))

let test_histogram_merge_identity =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"empty is the merge identity"
       arbitrary_observations
       (fun xs ->
         let a = histogram_of xs in
         same_reading "a+0 vs a"
           (Obs.Histogram.merge a (Obs.Histogram.create ()))
           a
         && same_reading "merge equals single histogram of all values"
              (Obs.Histogram.merge a (Obs.Histogram.create ()))
              (histogram_of xs)))

(* ------------------------------------------------------------------ *)
(* with_scope *)

let test_with_scope_deltas () =
  let c = Obs.Metrics.counter "test.obs.scope_counter" in
  let g = Obs.Metrics.gauge "test.obs.scope_gauge" in
  let h = Obs.Metrics.histogram "test.obs.scope_hist" in
  Obs.Metrics.add c 5;
  Obs.Histogram.observe h 100.;
  let result, entries =
    Obs.Metrics.with_scope (fun () ->
        Obs.Metrics.add c 3;
        Obs.Metrics.set g 2.5;
        Obs.Histogram.observe h 200.;
        Obs.Histogram.observe h 300.;
        "done")
  in
  Alcotest.(check string) "result passes through" "done" result;
  let entry name =
    match List.find_opt (fun e -> e.Obs.Metrics.name = name) entries with
    | Some e -> e.Obs.Metrics.value
    | None -> Alcotest.failf "scope entry %s missing" name
  in
  (match entry "test.obs.scope_counter" with
   | Obs.Metrics.Count n ->
     Alcotest.(check int) "counter delta, not total" 3 n
   | _ -> Alcotest.fail "counter entry has wrong kind");
  (match entry "test.obs.scope_gauge" with
   | Obs.Metrics.Value v ->
     Alcotest.(check (float 0.)) "gauge reports its level" 2.5 v
   | _ -> Alcotest.fail "gauge entry has wrong kind");
  (match entry "test.obs.scope_hist" with
   | Obs.Metrics.Dist s ->
     Alcotest.(check int) "histogram diff count" 2 s.Obs.Histogram.s_count
   | _ -> Alcotest.fail "histogram entry has wrong kind");
  Alcotest.(check int) "registry total is untouched" 8
    (Obs.Metrics.counter_value c)

(* ------------------------------------------------------------------ *)
(* JSON *)

let test_json_round_trip () =
  let doc =
    Obs.Json.(
      Obj
        [
          ("s", Str "a \"b\"\n\t\x01c\\");
          ("n", Num 1.5);
          ("i", Num 42.);
          ("neg", Num (-0.25));
          ("arr", Arr [ Null; Bool true; Bool false; Str "" ]);
          ("empty_obj", Obj []);
          ("empty_arr", Arr []);
        ])
  in
  let s = Obs.Json.to_string doc in
  validate_json s;
  (match Obs.Json.of_string s with
   | Ok doc' -> Alcotest.(check bool) "round trips structurally" true (doc = doc')
   | Error msg -> Alcotest.failf "round trip fails: %s" msg);
  let pretty = Obs.Json.to_string ~indent:2 doc in
  validate_json pretty;
  match Obs.Json.of_string pretty with
  | Ok doc' -> Alcotest.(check bool) "pretty round trips" true (doc = doc')
  | Error msg -> Alcotest.failf "pretty round trip fails: %s" msg

let test_json_parses_escapes () =
  (match Obs.Json.of_string "\"\\u0041\\n\\u00e9\"" with
   | Ok (Obs.Json.Str s) ->
     Alcotest.(check string) "unicode escapes decode to UTF-8" "A\n\xc3\xa9" s
   | Ok _ | Error _ -> Alcotest.fail "escape string did not parse");
  (match Obs.Json.of_string "\"\\ud83d\\ude00\"" with
   | Ok (Obs.Json.Str s) ->
     Alcotest.(check string) "surrogate pair decodes" "\xf0\x9f\x98\x80" s
   | Ok _ | Error _ -> Alcotest.fail "surrogate pair did not parse");
  List.iter
    (fun bad ->
      match Obs.Json.of_string bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted invalid JSON %S" bad)
    [ "{"; "[1,]"; "{\"a\":}"; "\"\\q\""; "01"; "\"unterminated"; "1 2";
      "\"\\ud800\"" ]

(* Hostile nesting must return Error at the documented bound, not blow
   the parser's stack.  The boundary is pinned: depth = default_max_depth
   parses, one deeper does not. *)
let nested depth = String.make depth '[' ^ String.make depth ']'

let test_json_depth_limit () =
  let at_limit = nested Obs.Json.default_max_depth in
  (match Obs.Json.of_string at_limit with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "depth %d rejected: %s" Obs.Json.default_max_depth e);
  (match Obs.Json.of_string (nested (Obs.Json.default_max_depth + 1)) with
   | Ok _ -> Alcotest.fail "depth max+1 accepted"
   | Error e ->
     Alcotest.(check bool) "error names the bound" true
       (Testlib.contains e (string_of_int Obs.Json.default_max_depth)));
  (match Obs.Json.of_string ~max_depth:3 "[[[1]]]" with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "custom depth 3 rejected: %s" e);
  (match Obs.Json.of_string ~max_depth:3 "[[[[1]]]]" with
   | Ok _ -> Alcotest.fail "custom depth 3 exceeded but accepted"
   | Error _ -> ());
  (* mixed containers count the same *)
  match Obs.Json.of_string ~max_depth:2 "{\"a\":[{\"b\":1}]}" with
  | Ok _ -> Alcotest.fail "object/array mix undercounted"
  | Error _ -> ()

let test_json_escape_complete () =
  for code = 0 to 31 do
    let escaped = Obs.Json.escape (String.make 1 (Char.chr code)) in
    Alcotest.(check bool)
      (Printf.sprintf "control 0x%02x is escaped" code)
      true
      (String.length escaped >= 2 && escaped.[0] = '\\')
  done;
  Alcotest.(check string) "quote" "\\\"" (Obs.Json.escape "\"");
  Alcotest.(check string) "backslash" "\\\\" (Obs.Json.escape "\\");
  Alcotest.(check string) "plain text untouched" "abc" (Obs.Json.escape "abc")

(* ------------------------------------------------------------------ *)
(* Snapshots *)

let plain_snapshot ?(metrics = []) ?(times_ns = []) () =
  {
    Obs.Snapshot.git_rev = None;
    ocaml_version = Sys.ocaml_version;
    config = [];
    metrics;
    times_ns;
  }

let test_snapshot_round_trip () =
  let c = Obs.Metrics.counter "test.obs.snap_counter" in
  Obs.Metrics.add c 7;
  let h = Obs.Metrics.histogram "test.obs.snap_hist_ns" in
  Obs.Histogram.observe h 1234.;
  let snap =
    Obs.Snapshot.capture ~config:[ ("repeats", "3") ]
      ~times_ns:[ ("perf.demo_ns", 1.5e6) ] ()
  in
  let s = Obs.Snapshot.to_string snap in
  validate_json s;
  match Obs.Snapshot.of_string s with
  | Error msg -> Alcotest.failf "snapshot does not parse back: %s" msg
  | Ok snap' ->
    Alcotest.(check string) "snapshot round trips byte for byte" s
      (Obs.Snapshot.to_string snap');
    Alcotest.(check bool) "counter survives" true
      (List.assoc_opt "test.obs.snap_counter" snap'.Obs.Snapshot.metrics
       <> None);
    Alcotest.(check (option (float 0.))) "time survives" (Some 1.5e6)
      (List.assoc_opt "perf.demo_ns" snap'.Obs.Snapshot.times_ns)

let test_snapshot_rejects_bad_documents () =
  List.iter
    (fun doc ->
      match Obs.Snapshot.of_string doc with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bad snapshot %s" doc)
    [
      "not json";
      "{}";
      "{\"schema\":\"other\",\"version\":1}";
      (* right schema, wrong version *)
      "{\"schema\":\"paredown-perf-snapshot\",\"version\":99,\
       \"ocaml_version\":\"5\",\"config\":{},\"times_ns\":{},\
       \"metrics\":{}}";
    ]

let test_snapshot_gate () =
  let base =
    plain_snapshot
      ~metrics:[ ("core.paredown.fit_checks", Obs.Snapshot.Int 1000) ]
      ~times_ns:[ ("perf.sim_ns", 10e6); ("perf.tiny_ns", 1e3) ]
      ()
  in
  Alcotest.(check int) "self-compare passes" 0
    (List.length (Obs.Snapshot.gate ~base base));
  (* 10x wall-time blowup on a millisecond-scale group: gated, named *)
  let slow =
    plain_snapshot
      ~metrics:[ ("core.paredown.fit_checks", Obs.Snapshot.Int 1000) ]
      ~times_ns:[ ("perf.sim_ns", 100e6); ("perf.tiny_ns", 1e3) ]
      ()
  in
  (match Obs.Snapshot.gate ~base slow with
   | [ r ] ->
     Alcotest.(check string) "offending metric is named" "perf.sim_ns"
       r.Obs.Snapshot.r_metric;
     Alcotest.(check (float 1e-9)) "ratio is 10x" 10. r.Obs.Snapshot.r_ratio
   | rs -> Alcotest.failf "expected 1 regression, got %d" (List.length rs));
  (* the same ratio below the absolute floor: jitter, not a regression *)
  let jitter =
    plain_snapshot
      ~metrics:[ ("core.paredown.fit_checks", Obs.Snapshot.Int 1000) ]
      ~times_ns:[ ("perf.sim_ns", 10e6); ("perf.tiny_ns", 10e3) ]
      ()
  in
  Alcotest.(check int) "sub-floor growth does not gate" 0
    (List.length (Obs.Snapshot.gate ~base jitter));
  (* a deterministic counter creeping 2x: gated even though times hold *)
  let more_work =
    plain_snapshot
      ~metrics:[ ("core.paredown.fit_checks", Obs.Snapshot.Int 3000) ]
      ~times_ns:[ ("perf.sim_ns", 10e6); ("perf.tiny_ns", 1e3) ]
      ()
  in
  match Obs.Snapshot.gate ~base more_work with
  | [ r ] ->
    Alcotest.(check string) "counter regression named"
      "core.paredown.fit_checks" r.Obs.Snapshot.r_metric
  | rs -> Alcotest.failf "expected 1 counter regression, got %d"
            (List.length rs)

let test_snapshot_merge_is_min () =
  let a =
    plain_snapshot
      ~metrics:[ ("m", Obs.Snapshot.Int 5) ]
      ~times_ns:[ ("perf.x_ns", 10.); ("perf.only_a_ns", 7.) ]
      ()
  in
  let b =
    plain_snapshot
      ~metrics:[ ("m", Obs.Snapshot.Int 9) ]
      ~times_ns:[ ("perf.x_ns", 6.) ]
      ()
  in
  let m = Obs.Snapshot.merge_all [ a; b ] in
  Alcotest.(check (option (float 0.))) "times take the min" (Some 6.)
    (List.assoc_opt "perf.x_ns" m.Obs.Snapshot.times_ns);
  Alcotest.(check (option (float 0.))) "singletons survive" (Some 7.)
    (List.assoc_opt "perf.only_a_ns" m.Obs.Snapshot.times_ns);
  Alcotest.(check bool) "metric takes the min" true
    (List.assoc_opt "m" m.Obs.Snapshot.metrics = Some (Obs.Snapshot.Int 5))

(* ------------------------------------------------------------------ *)
(* Profiler sink *)

let test_profile_self_time () =
  let p = Obs.Profile.create () in
  let s = Obs.Profile.sink p in
  let ts v = Int64.of_int v in
  s.Obs.Trace.start_span ~name:"outer" ~args:[] ~ts_ns:(ts 0);
  s.Obs.Trace.start_span ~name:"inner" ~args:[] ~ts_ns:(ts 100);
  s.Obs.Trace.instant ~name:"tick" ~args:[] ~ts_ns:(ts 150);
  s.Obs.Trace.end_span ~name:"inner" ~ts_ns:(ts 300);
  s.Obs.Trace.start_span ~name:"inner" ~args:[] ~ts_ns:(ts 400);
  s.Obs.Trace.end_span ~name:"inner" ~ts_ns:(ts 500);
  s.Obs.Trace.end_span ~name:"outer" ~ts_ns:(ts 1000);
  let row name =
    match
      List.find_opt (fun r -> r.Obs.Profile.name = name) (Obs.Profile.rows p)
    with
    | Some r -> r
    | None -> Alcotest.failf "no profile row for %s" name
  in
  let outer = row "outer" and inner = row "inner" in
  Alcotest.(check int) "outer calls" 1 outer.Obs.Profile.calls;
  Alcotest.(check int) "inner calls" 2 inner.Obs.Profile.calls;
  Alcotest.(check (float 0.)) "inner total" 300. inner.Obs.Profile.total_ns;
  Alcotest.(check (float 0.)) "inner self = total (leaf)" 300.
    inner.Obs.Profile.self_ns;
  Alcotest.(check (float 0.)) "outer total" 1000. outer.Obs.Profile.total_ns;
  Alcotest.(check (float 0.)) "outer self excludes children" 700.
    outer.Obs.Profile.self_ns;
  Alcotest.(check int) "instant tallied" 1 (row "! tick").Obs.Profile.calls;
  let table = Obs.Profile.to_table p in
  Alcotest.(check bool) "table leads with the biggest self time" true
    (Testlib.contains table "outer")

(* ------------------------------------------------------------------ *)
(* The instrumented pipeline: §4.2 closed form via the counter *)

let test_fit_check_counter_matches_closed_form () =
  List.iter
    (fun n ->
      let g = Randgen.Generator.worst_case ~inner:n in
      let before = counter_value fit_checks_counter in
      let r = Core.Paredown.run g in
      let counted = counter_value fit_checks_counter - before in
      let expected = n * (n + 1) / 2 in
      Alcotest.(check int)
        (Printf.sprintf "counter delta = n(n+1)/2 for n=%d" n)
        expected counted;
      Alcotest.(check int)
        (Printf.sprintf "counter agrees with per-run stats for n=%d" n)
        r.Core.Paredown.stats.Core.Paredown.fit_checks counted)
    [ 3; 5; 10; 20; 40 ]

let test_scale_worst_case_reports_closed_form () =
  let points = Experiments.Scale.run_worst_case ~sizes:[ 5; 10 ] () in
  List.iter
    (fun p ->
      Alcotest.(check (option int)) "expected column is the closed form"
        (Some (Experiments.Scale.closed_form p.Experiments.Scale.inner))
        p.Experiments.Scale.expected_fit_checks;
      Alcotest.(check (option int)) "measured equals closed form"
        (Some p.Experiments.Scale.fit_checks)
        p.Experiments.Scale.expected_fit_checks)
    points;
  Alcotest.(check bool) "table carries the ok mark" true
    (Testlib.contains (Experiments.Scale.to_table points) "ok")

let test_exhaustive_deadline_counter () =
  let before = counter_value "core.exhaustive.deadline_hits" in
  (* 14 inner blocks exhaustively with a ~zero deadline must time out *)
  let g =
    Randgen.Generator.generate ~rng:(Prng.create 5) ~inner:14 ()
  in
  let r = Core.Exhaustive.run ~deadline_s:0.0 g in
  Alcotest.(check bool) "search timed out" true
    (r.Core.Exhaustive.outcome = Core.Exhaustive.Timed_out);
  Alcotest.(check int) "deadline hit counted" (before + 1)
    (counter_value "core.exhaustive.deadline_hits")

let test_sim_packet_counter_tracks_engine () =
  let before = counter_value "sim.packets_sent" in
  let g = Testlib.podium in
  let engine = Sim.Engine.create g in
  let script =
    Sim.Stimulus.random ~rng:(Prng.create 3)
      ~sensors:(Netlist.Graph.sensors g) ~steps:10 ~spacing:10
  in
  ignore (Sim.Stimulus.settled_outputs engine script);
  let sent = counter_value "sim.packets_sent" - before in
  Alcotest.(check int) "global counter matches the engine's own count"
    (Sim.Engine.packet_count engine) sent;
  Alcotest.(check bool) "some packets flowed" true (sent > 0)

(* ------------------------------------------------------------------ *)
(* Flush: re-armable exit writers.  Re-arming a slot must replace its
   hook (a long-lived process arming per batch must not accumulate
   closures), disarm must remove it, and flushing runs hooks in slot
   order with per-hook exception containment. *)

let test_flush_rearm_no_growth () =
  let base = Obs.Flush.armed_count () in
  let fired = ref 0 in
  for _ = 1 to 100 do
    Obs.Flush.arm ~slot:"test.obs.flush" (fun () -> incr fired);
    Obs.Flush.flush ~slot:"test.obs.flush"
  done;
  Alcotest.(check int) "100 arm/flush cycles keep one hook" (base + 1)
    (Obs.Flush.armed_count ());
  Alcotest.(check int) "each flush ran the current hook" 100 !fired;
  Obs.Flush.disarm ~slot:"test.obs.flush";
  Alcotest.(check int) "disarm removes it" base (Obs.Flush.armed_count ());
  (* flushing a disarmed slot is a no-op, not an error *)
  Obs.Flush.flush ~slot:"test.obs.flush";
  Alcotest.(check int) "no ghost hook" 100 !fired

let test_flush_rearm_replaces () =
  let hits = ref [] in
  Obs.Flush.arm ~slot:"test.obs.replace" (fun () -> hits := `Old :: !hits);
  Obs.Flush.arm ~slot:"test.obs.replace" (fun () -> hits := `New :: !hits);
  Obs.Flush.flush ~slot:"test.obs.replace";
  Obs.Flush.disarm ~slot:"test.obs.replace";
  Alcotest.(check bool) "only the latest hook runs" true (!hits = [ `New ])

(* ------------------------------------------------------------------ *)
(* Lru: the bounded recency map under the estimator memo cache and the
   service solution cache. *)

let test_lru_eviction_order () =
  let t = Obs.Lru.create ~capacity:3 in
  List.iter (fun k -> Obs.Lru.put t k (String.length k)) [ "a"; "b"; "c" ];
  Alcotest.(check int) "full" 3 (Obs.Lru.length t);
  (* touching "a" promotes it; the next insert evicts "b" *)
  Alcotest.(check (option int)) "find hits" (Some 1) (Obs.Lru.find t "a");
  Obs.Lru.put t "d" 4;
  Alcotest.(check int) "evicted one" 1 (Obs.Lru.evictions t);
  Alcotest.(check bool) "b is the victim" false (Obs.Lru.mem t "b");
  Alcotest.(check bool) "a survived its promotion" true (Obs.Lru.mem t "a");
  (* overwrite is not an insert: no eviction *)
  Obs.Lru.put t "a" 10;
  Alcotest.(check int) "overwrite evicts nothing" 1 (Obs.Lru.evictions t);
  Alcotest.(check (option int)) "overwrite sticks" (Some 10)
    (Obs.Lru.find t "a")

let test_lru_fold_reload_preserves_recency () =
  let t = Obs.Lru.create ~capacity:4 in
  List.iter (fun k -> Obs.Lru.put t k k) [ "w"; "x"; "y"; "z" ];
  ignore (Obs.Lru.find t "w");
  (* reload oldest-first into a fresh map: same contents, same recency *)
  let t' = Obs.Lru.create ~capacity:4 in
  Obs.Lru.fold_oldest_first (fun () k v -> Obs.Lru.put t' k v) t ();
  Obs.Lru.put t' "new" "new";
  Alcotest.(check bool) "reload evicts the same victim (x)" false
    (Obs.Lru.mem t' "x");
  Alcotest.(check bool) "promoted key survives reload" true
    (Obs.Lru.mem t' "w")

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic ] );
      ( "metrics",
        [
          Alcotest.test_case "counter arithmetic" `Quick
            test_counter_arithmetic;
          Alcotest.test_case "gauge and snapshot" `Quick
            test_gauge_and_snapshot;
          Alcotest.test_case "kind clash rejected" `Quick
            test_kind_clash_rejected;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting and balance" `Quick
            test_span_nesting_and_balance;
          Alcotest.test_case "closed on exception" `Quick
            test_span_closed_on_exception;
          Alcotest.test_case "null sink default" `Quick
            test_null_sink_is_default_and_cheap;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "well-formed JSON" `Quick
            test_chrome_json_well_formed;
          Alcotest.test_case "empty recording" `Quick
            test_chrome_empty_recording_valid;
          Alcotest.test_case "nested + instants at one timestamp" `Quick
            test_chrome_nested_same_timestamp;
          test_chrome_escaping_property;
          Alcotest.test_case "paredown spans" `Quick
            test_paredown_run_traces_spans;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "statistics" `Quick test_histogram_statistics;
          Alcotest.test_case "empty and clear" `Quick
            test_histogram_empty_and_clear;
          Alcotest.test_case "diff" `Quick test_histogram_diff;
          Alcotest.test_case "time and registry" `Quick
            test_histogram_time_and_registry;
          test_histogram_merge_commutative;
          test_histogram_merge_associative;
          test_histogram_merge_identity;
        ] );
      ( "scope",
        [
          Alcotest.test_case "with_scope deltas" `Quick
            test_with_scope_deltas;
        ] );
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "escape decoding" `Quick
            test_json_parses_escapes;
          Alcotest.test_case "escaping is complete" `Quick
            test_json_escape_complete;
          Alcotest.test_case "nesting depth limit" `Quick
            test_json_depth_limit;
        ] );
      ( "flush",
        [
          Alcotest.test_case "re-arming does not grow" `Quick
            test_flush_rearm_no_growth;
          Alcotest.test_case "re-arm replaces the hook" `Quick
            test_flush_rearm_replaces;
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction and promotion" `Quick
            test_lru_eviction_order;
          Alcotest.test_case "oldest-first fold reloads recency" `Quick
            test_lru_fold_reload_preserves_recency;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "round trip" `Quick test_snapshot_round_trip;
          Alcotest.test_case "bad documents rejected" `Quick
            test_snapshot_rejects_bad_documents;
          Alcotest.test_case "regression gate" `Quick test_snapshot_gate;
          Alcotest.test_case "merge is field-wise min" `Quick
            test_snapshot_merge_is_min;
        ] );
      ( "profile",
        [
          Alcotest.test_case "self-time accounting" `Quick
            test_profile_self_time;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "fit checks = n(n+1)/2 (worst case)" `Quick
            test_fit_check_counter_matches_closed_form;
          Alcotest.test_case "scale table closed form" `Quick
            test_scale_worst_case_reports_closed_form;
          Alcotest.test_case "exhaustive deadline hits" `Quick
            test_exhaustive_deadline_counter;
          Alcotest.test_case "sim packet counter" `Quick
            test_sim_packet_counter_tracks_engine;
        ] );
    ]
