(* The perf suite behind `paredown perf record` and the bench JSON:
   group inventory, repeat-invariant recording, and the self-compare
   invariant the CI smoke test relies on. *)

let expected_groups =
  [ "kernel"; "exhaustive"; "table1"; "table2"; "scale"; "worstcase";
    "ablation"; "codegen"; "sim"; "faults"; "reliability"; "power";
    "frontend";
    "journal"; "sim_kernel"; "sim_kernel_interp"; "telemetry";
    "service" ]

let test_group_inventory () =
  let names = List.map (fun g -> g.Experiments.Perf.name)
      Experiments.Perf.groups in
  Alcotest.(check (list string)) "one group per bench table"
    expected_groups names;
  List.iter
    (fun g ->
      Alcotest.(check bool)
        (g.Experiments.Perf.name ^ " has a doc") true
        (String.length g.Experiments.Perf.doc > 0))
    Experiments.Perf.groups

(* Recording is the expensive part (it runs the whole pipeline), so one
   record feeds the remaining checks. *)
let snap = lazy (Experiments.Perf.record ~repeats:1 ())

let test_record_times_every_group () =
  let snap = Lazy.force snap in
  let times = snap.Obs.Snapshot.times_ns in
  Alcotest.(check int) "one time per group"
    (List.length expected_groups) (List.length times);
  List.iter
    (fun name ->
      match List.assoc_opt (Experiments.Perf.time_key name) times with
      | Some t ->
        Alcotest.(check bool) (name ^ " took positive time") true (t > 0.)
      | None -> Alcotest.failf "no time recorded for group %s" name)
    expected_groups

let test_record_captures_work_counters () =
  let snap = Lazy.force snap in
  let metric name =
    match List.assoc_opt name snap.Obs.Snapshot.metrics with
    | Some v -> v
    | None -> Alcotest.failf "metric %s missing from snapshot" name
  in
  (match metric "core.paredown.fit_checks" with
   | Obs.Snapshot.Int n ->
     Alcotest.(check bool) "fit checks counted" true (n > 0)
   | _ -> Alcotest.fail "fit_checks is not a counter");
  match metric "sim.settle_ns" with
  | Obs.Snapshot.Dist s ->
    Alcotest.(check bool) "settle latencies observed" true
      (s.Obs.Histogram.s_count > 0)
  | _ -> Alcotest.fail "sim.settle_ns is not a histogram"

let test_self_compare_passes () =
  let snap = Lazy.force snap in
  Alcotest.(check int) "a snapshot never regresses against itself" 0
    (List.length (Obs.Snapshot.gate ~base:snap snap))

let test_snapshot_round_trips_through_disk_format () =
  let snap = Lazy.force snap in
  match Obs.Snapshot.of_string (Obs.Snapshot.to_string snap) with
  | Error msg -> Alcotest.failf "recorded snapshot does not parse: %s" msg
  | Ok snap' ->
    Alcotest.(check string) "byte-stable serialisation"
      (Obs.Snapshot.to_string snap) (Obs.Snapshot.to_string snap');
    Alcotest.(check int) "gate passes across the round trip" 0
      (List.length (Obs.Snapshot.gate ~base:snap snap'))

let () =
  Alcotest.run "perf"
    [
      ( "suite",
        [
          Alcotest.test_case "group inventory" `Quick test_group_inventory;
          Alcotest.test_case "record times every group" `Slow
            test_record_times_every_group;
          Alcotest.test_case "record captures work counters" `Slow
            test_record_captures_work_counters;
          Alcotest.test_case "self-compare passes" `Slow
            test_self_compare_passes;
          Alcotest.test_case "round trip through disk format" `Slow
            test_snapshot_round_trips_through_disk_format;
        ] );
    ]
