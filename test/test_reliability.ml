(* Tests for the reliability layer: Degrade.score and the classifier's
   edge cases, Fault.stats algebra, fault-plan families, the memoized
   Monte-Carlo estimator, the reliability-weighted searches, and the
   cost/reliability Pareto sweep. *)

module Graph = Netlist.Graph
module F = Sim.Fault
module D = Sim.Degrade
module Family = Reliability.Family
module Estimator = Reliability.Estimator

let check = Alcotest.check

let podium_script ?(steps = 20) seed =
  let g = Testlib.podium in
  Sim.Stimulus.random ~rng:(Prng.create seed) ~sensors:(Graph.sensors g)
    ~steps ~spacing:20

(* --- Degrade edge cases --------------------------------------------------- *)

let test_score_values_and_monotonicity () =
  let outcomes = D.[ Identical; Glitch_recovered; Wrong_value; Diverged ] in
  check (Alcotest.list (Alcotest.float 0.)) "score spectrum"
    [ 0.; 0.25; 0.75; 1. ]
    (List.map D.score outcomes);
  (* monotone in severity, both directions *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check Alcotest.bool
            (Printf.sprintf "monotone %s/%s" (D.outcome_to_string a)
               (D.outcome_to_string b))
            (D.severity a <= D.severity b)
            (D.score a <= D.score b))
        outcomes)
    outcomes

let test_zero_packet_script_identical () =
  (* an empty script gives the classifier nothing to compare: even a
     drop-everything plan comes back Identical with no mismatches *)
  let run = D.classify ~faults:(F.drop_all ~seed:2 1.0) Testlib.podium [] in
  check Alcotest.string "identical" "identical"
    (D.outcome_to_string run.D.outcome);
  check Alcotest.int "no steps compared" 0 run.D.steps;
  check Alcotest.int "no mismatches" 0 run.D.mismatched_steps

let test_never_strike_plan_identical () =
  (* a plan whose only fault lies beyond the simulated horizon is
     installed but never draws: Identical, with zero injections *)
  let plan =
    { F.none with
      seed = 5;
      default_edge = { F.no_edge_fault with dies_at = Some max_int } }
  in
  let run = D.classify ~faults:plan Testlib.podium (podium_script 11) in
  check Alcotest.string "identical" "identical"
    (D.outcome_to_string run.D.outcome);
  check Alcotest.int "nothing injected" 0 (F.total run.D.injected)

(* The glitch/wrong boundary, pinned per plan seed on one script: the
   same lossy rate yields a transient (recovers by the final step), a
   settled-wrong run, and a fully-absorbed one depending only on which
   packets the seed picks off. *)
let test_boundary_pinned_per_seed () =
  let script = podium_script 11 in
  let outcome seed =
    (D.classify ~faults:(F.drop_all ~seed 0.05) Testlib.podium script)
      .D.outcome
  in
  check Alcotest.string "seed 11 absorbs" "identical"
    (D.outcome_to_string (outcome 11));
  check Alcotest.string "seed 4 recovers" "glitch-recovered"
    (D.outcome_to_string (outcome 4));
  check Alcotest.string "seed 1 settles wrong" "wrong-value"
    (D.outcome_to_string (outcome 1))

let test_sweep_reports_settle_limit () =
  let script = podium_script 5 ~steps:10 in
  let plans = [ ("none", F.none); ("drop", F.drop_all ~seed:4 0.1) ] in
  let limits limit =
    List.map
      (fun (_, r) -> r.D.settle_limit)
      (D.sweep ?settle_limit:limit ~plans Testlib.podium script)
  in
  check (Alcotest.list Alcotest.int) "caller's limit reported" [ 123; 123 ]
    (limits (Some 123));
  check (Alcotest.list Alcotest.int) "default limit reported"
    [ 100_000; 100_000 ] (limits None)

(* --- Fault.stats algebra -------------------------------------------------- *)

let test_stats_merge_laws () =
  let a =
    { F.drops = 3; duplicates = 1; corruptions = 0; jittered = 2;
      dead_link_losses = 5; resets = 1; stuck_overrides = 0 }
  in
  let b =
    { F.drops = 1; duplicates = 0; corruptions = 4; jittered = 0;
      dead_link_losses = 2; resets = 3; stuck_overrides = 7 }
  in
  check Alcotest.bool "zero is left identity" true (F.merge F.zero a = a);
  check Alcotest.bool "zero is right identity" true (F.merge a F.zero = a);
  check Alcotest.bool "commutative" true (F.merge a b = F.merge b a);
  check Alcotest.int "total is additive" (F.total a + F.total b)
    (F.total (F.merge a b));
  check Alcotest.int "zero totals zero" 0 (F.total F.zero)

(* --- Families ------------------------------------------------------------- *)

let all_families =
  [
    Family.Drop { rate = 0.05 };
    Family.Chaos { drop = 0.02; duplicate = 0.01; corrupt = 0.01; jitter = 2 };
    Family.Brownout { rate = 0.3; ticks = [ 50; 150; 250 ] };
  ]

let test_family_string_round_trip () =
  List.iter
    (fun f ->
      let s = Family.to_string f in
      match Family.of_string s with
      | Ok f' -> check Alcotest.string ("round-trip " ^ s) s
                   (Family.to_string f')
      | Error e -> Alcotest.fail (s ^ ": " ^ e))
    all_families;
  List.iter
    (fun bad ->
      match Family.of_string bad with
      | Ok _ -> Alcotest.fail (bad ^ " should not parse")
      | Error _ -> ())
    [ ""; "drop"; "drop:1.5"; "brownout:0.3"; "chaos:0.1"; "meteor:1" ]

let test_family_plan_deterministic () =
  let g = Testlib.podium in
  List.iter
    (fun f ->
      check Alcotest.bool
        ("deterministic " ^ Family.name f)
        true
        (Family.plan f ~seed:9 g = Family.plan f ~seed:9 g))
    all_families

let test_brownout_targets_inner_nodes () =
  let g = Testlib.podium in
  let inner = Graph.inner_nodes g in
  let plan =
    Family.plan (Family.Brownout { rate = 1.0; ticks = [ 10 ] }) ~seed:1 g
  in
  (* rate 1 browns out every inner block, and only inner blocks *)
  check Alcotest.int "one node fault per inner block" (List.length inner)
    (List.length plan.F.node_faults);
  List.iter
    (fun (node, nf) ->
      check Alcotest.bool "targets an inner node" true (List.mem node inner);
      check (Alcotest.list Alcotest.int) "resets at the listed tick" [ 10 ]
        nf.F.reset_at)
    plan.F.node_faults

(* --- The estimator -------------------------------------------------------- *)

let small_estimator =
  { Estimator.default_config with trials = 8; steps = 8; spacing = 20 }

let test_estimate_shape () =
  let e = Estimator.estimate_network small_estimator Testlib.podium in
  check Alcotest.int "counts cover every trial" e.Estimator.trials
    Estimator.(e.identical + e.recovered + e.wrong + e.diverged);
  let expected_mean =
    Estimator.(
      (0.25 *. float_of_int e.recovered
       +. 0.75 *. float_of_int e.wrong
       +. float_of_int e.diverged)
      /. float_of_int e.trials)
  in
  check (Alcotest.float 1e-9) "mean averages the scores" expected_mean
    e.Estimator.mean;
  check Alcotest.bool "interval brackets the mean" true
    (e.Estimator.lo <= e.Estimator.mean && e.Estimator.mean <= e.Estimator.hi);
  check Alcotest.bool "interval clamped to [0,1]" true
    (0. <= e.Estimator.lo && e.Estimator.hi <= 1.)

let test_estimate_never_strike_family () =
  (* drop:0 draws nothing: every trial Identical, zero injections *)
  let config = { small_estimator with family = Family.Drop { rate = 0. } } in
  let e = Estimator.estimate_network config Testlib.podium in
  check Alcotest.int "all identical" e.Estimator.trials e.Estimator.identical;
  check (Alcotest.float 0.) "zero mean" 0. e.Estimator.mean;
  check (Alcotest.float 0.) "zero stderr" 0. e.Estimator.stderr;
  check Alcotest.int "zero draws" 0 (F.total e.Estimator.injected)

let test_estimate_jobs_invariant () =
  let one = Estimator.estimate_network ~jobs:1 small_estimator Testlib.podium in
  let two = Estimator.estimate_network ~jobs:2 small_estimator Testlib.podium in
  check Alcotest.bool "jobs 1 = jobs 2" true (one = two)

let test_fingerprint_permutation_invariant () =
  let g = Testlib.podium in
  let solution = (Core.Paredown.run g).Core.Paredown.solution in
  check Alcotest.bool "needs two partitions to permute" true
    (List.length solution.Core.Solution.partitions >= 2);
  let reversed =
    { Core.Solution.partitions =
        List.rev solution.Core.Solution.partitions }
  in
  check Alcotest.string "order-independent key"
    (Estimator.fingerprint small_estimator g solution)
    (Estimator.fingerprint small_estimator g reversed)

let test_cache_hits () =
  let g = Testlib.podium in
  let solution = (Core.Paredown.run g).Core.Paredown.solution in
  let cache = Estimator.cache () in
  let (first, second), entries =
    Obs.Metrics.with_scope (fun () ->
        let first =
          Estimator.estimate_solution ~cache small_estimator g solution
        in
        (* same partitions, permuted: must hit, not recompute *)
        let second =
          Estimator.estimate_solution ~cache small_estimator g
            { Core.Solution.partitions =
                List.rev solution.Core.Solution.partitions }
        in
        (first, second))
  in
  check Alcotest.bool "hit returns the stored estimate" true (first = second);
  let stats = Estimator.cache_stats cache in
  check Alcotest.int "one hit" 1 stats.Estimator.hits;
  check Alcotest.int "one miss" 1 stats.Estimator.misses;
  check Alcotest.int "one entry" 1 stats.Estimator.entries;
  let scoped name =
    match
      List.find_opt (fun e -> e.Obs.Metrics.name = name) entries
    with
    | Some { Obs.Metrics.value = Obs.Metrics.Count n; _ } -> n
    | _ -> Alcotest.fail ("missing counter " ^ name)
  in
  check Alcotest.int "cache_hits counter" 1 (scoped "reliability.cache_hits");
  check Alcotest.int "cache_misses counter" 1
    (scoped "reliability.cache_misses");
  check Alcotest.int "trials counter" small_estimator.Estimator.trials
    (scoped "reliability.trials")

(* The memo table is a bounded LRU now.  Pinned behaviours: a capacity
   larger than the working set is observationally the old unbounded
   table (same estimates, zero evictions); a tight capacity evicts —
   counted on the cache and the reliability.cache_evictions metric —
   and still returns exactly the same estimates, just recomputed. *)
let test_cache_capacity_bound () =
  let g = Testlib.podium in
  let full = (Core.Paredown.run g).Core.Paredown.solution in
  let solutions =
    (* distinct fingerprints: empty, each partition alone, both *)
    Core.Solution.empty
    :: full
    :: List.map
         (fun p -> { Core.Solution.partitions = [ p ] })
         full.Core.Solution.partitions
  in
  check Alcotest.bool "working set has at least 4 keys" true
    (List.length solutions >= 4);
  let sweep cache =
    (* two passes: the second pass hits only if nothing was evicted *)
    List.concat_map
      (fun s ->
        List.map
          (fun s -> Estimator.estimate_solution ~cache small_estimator g s)
          [ s ])
      (solutions @ solutions)
  in
  let roomy = Estimator.cache ~capacity:16 () in
  let tight = Estimator.cache ~capacity:2 () in
  let (roomy_ests, tight_ests), entries =
    Obs.Metrics.with_scope (fun () -> (sweep roomy, sweep tight))
  in
  check Alcotest.bool "estimates unchanged under eviction pressure" true
    (roomy_ests = tight_ests);
  let roomy_stats = Estimator.cache_stats roomy in
  let tight_stats = Estimator.cache_stats tight in
  check Alcotest.int "roomy capacity never evicts" 0
    roomy_stats.Estimator.evictions;
  check Alcotest.int "roomy second pass all hits"
    (List.length solutions) roomy_stats.Estimator.hits;
  check Alcotest.bool "tight capacity evicts" true
    (tight_stats.Estimator.evictions > 0);
  check Alcotest.int "tight capacity holds its bound" 2
    tight_stats.Estimator.entries;
  let metric =
    match
      List.find_opt
        (fun e -> e.Obs.Metrics.name = "reliability.cache_evictions")
        entries
    with
    | Some { Obs.Metrics.value = Obs.Metrics.Count n; _ } -> n
    | _ -> Alcotest.fail "missing counter reliability.cache_evictions"
  in
  check Alcotest.int "evictions counted on the metric"
    tight_stats.Estimator.evictions metric

(* --- The weighted searches ------------------------------------------------ *)

let weighted ~lambda ~lexicographic ~cache g =
  {
    Core.Paredown.lambda;
    lexicographic;
    severity = Estimator.scorer ~cache small_estimator g;
  }

let test_lambda_zero_returns_base () =
  let g = Testlib.podium in
  let cache = Estimator.cache () in
  let r =
    Core.Paredown.run_weighted
      ~weighted:(weighted ~lambda:0. ~lexicographic:false ~cache g) g
  in
  check Alcotest.bool "solution is the paper's" true
    (r.Core.Paredown.solution = r.Core.Paredown.base.Core.Paredown.solution);
  check Alcotest.int "nothing dissolved" 0 r.Core.Paredown.dissolved;
  check (Alcotest.float 0.) "severity unchanged"
    r.Core.Paredown.base_severity r.Core.Paredown.severity

(* The seeded counterexample, pinned as a regression: on the Entry Gate
   Detector under the default brownout family the paper's merge is the
   less reliable answer (merged ≈ 0.164 vs flat ≈ 0.133 expected
   severity), and λ = 64 — past the 1/Δseverity ≈ 32 exchange rate —
   buys the dissolve back. *)
let test_entry_gate_dissolve_regression () =
  let g = Designs.Library.entry_gate_detector.Designs.Design.network in
  let cache = Estimator.cache () in
  let config = Estimator.default_config in
  let r =
    Core.Paredown.run_weighted
      ~weighted:
        {
          Core.Paredown.lambda = 64.;
          lexicographic = false;
          severity = Estimator.scorer ~cache config g;
        }
      g
  in
  check Alcotest.int "one partition dissolved" 1 r.Core.Paredown.dissolved;
  check Alcotest.bool "strictly more reliable than λ=0" true
    (r.Core.Paredown.severity < r.Core.Paredown.base_severity);
  (* the pinned magnitudes, loose enough to survive float formatting *)
  check (Alcotest.float 0.01) "flat severity" 0.133 r.Core.Paredown.severity;
  check (Alcotest.float 0.01) "merged severity" 0.164
    r.Core.Paredown.base_severity

let test_lexicographic_never_worse () =
  List.iter
    (fun d ->
      let g = d.Designs.Design.network in
      let cache = Estimator.cache () in
      let r =
        Core.Paredown.run_weighted
          ~weighted:(weighted ~lambda:0. ~lexicographic:true ~cache g) g
      in
      check Alcotest.bool
        (d.Designs.Design.name ^ " lex never worse")
        true
        (r.Core.Paredown.severity <= r.Core.Paredown.base_severity))
    [ Designs.Library.podium_timer_3; Designs.Library.entry_gate_detector ]

(* --- The Pareto sweep ----------------------------------------------------- *)

module R = Experiments.Reliability

let small_sweep =
  { R.default_config with
    estimator = small_estimator;
    lambdas = [ 0.; 64. ] }

let test_sweep_rows_well_formed () =
  let report =
    R.run_network ~config:small_sweep ~name:"podium" Testlib.podium
  in
  (* flat + one row per λ + lex *)
  check Alcotest.int "row count" 4 (List.length report.R.rows);
  (match report.R.rows with
   | first :: _ ->
     check Alcotest.string "flat row first" "flat"
       (R.mode_to_string first.R.mode);
     check Alcotest.int "flat has no partitions" 0 first.R.partitions
   | [] -> Alcotest.fail "no rows");
  check Alcotest.bool "some row on the front" true
    (List.exists (fun r -> r.R.on_front) report.R.rows);
  (* a dominated row is dominated by some front row *)
  List.iter
    (fun r ->
      if not r.R.on_front then
        check Alcotest.bool "dominated by a front row" true
          (List.exists
             (fun o ->
               o.R.on_front
               && o.R.blocks <= r.R.blocks
               && o.R.severity <= r.R.severity
               && (o.R.blocks < r.R.blocks || o.R.severity < r.R.severity))
             report.R.rows))
    report.R.rows;
  let stats = report.R.cache in
  check Alcotest.bool "sweep shares the cache" true
    (stats.Estimator.hits > 0)

let test_sweep_finds_the_counterexample () =
  (* the acceptance criterion, via the experiment's own rows: some λ
     strictly beats λ=0 on the Entry Gate Detector *)
  let report =
    { small_sweep with estimator = Estimator.default_config }
    |> fun config -> R.run_design ~config Designs.Library.entry_gate_detector
  in
  let severity mode =
    match List.find_opt (fun r -> r.R.mode = mode) report.R.rows with
    | Some r -> r.R.severity
    | None -> Alcotest.fail ("missing row " ^ R.mode_to_string mode)
  in
  check Alcotest.bool "λ=64 beats λ=0" true
    (severity (R.Weighted 64.) < severity (R.Weighted 0.))

let test_sweep_jobs_byte_identical () =
  let run jobs = R.run ~config:small_sweep ~jobs () in
  let one = run 1 and two = run 2 in
  check Alcotest.string "tables byte-identical" (R.to_table one)
    (R.to_table two);
  check Alcotest.string "csv byte-identical" (R.to_csv one) (R.to_csv two);
  check Alcotest.bool "summaries agree" true (R.summary one = R.summary two)

let () =
  Alcotest.run "reliability"
    [
      ( "degrade",
        [
          Alcotest.test_case "score values + monotonicity" `Quick
            test_score_values_and_monotonicity;
          Alcotest.test_case "zero-packet script" `Quick
            test_zero_packet_script_identical;
          Alcotest.test_case "never-strike plan" `Quick
            test_never_strike_plan_identical;
          Alcotest.test_case "gl/wr boundary per seed" `Quick
            test_boundary_pinned_per_seed;
          Alcotest.test_case "sweep reports settle limit" `Quick
            test_sweep_reports_settle_limit;
        ] );
      ( "stats",
        [ Alcotest.test_case "merge laws" `Quick test_stats_merge_laws ] );
      ( "families",
        [
          Alcotest.test_case "string round-trip" `Quick
            test_family_string_round_trip;
          Alcotest.test_case "plan deterministic" `Quick
            test_family_plan_deterministic;
          Alcotest.test_case "brownout targets inner nodes" `Quick
            test_brownout_targets_inner_nodes;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "estimate shape" `Quick test_estimate_shape;
          Alcotest.test_case "never-strike family" `Quick
            test_estimate_never_strike_family;
          Alcotest.test_case "jobs invariant" `Quick
            test_estimate_jobs_invariant;
          Alcotest.test_case "fingerprint permutation" `Quick
            test_fingerprint_permutation_invariant;
          Alcotest.test_case "cache hits" `Quick test_cache_hits;
          Alcotest.test_case "cache capacity bound" `Quick
            test_cache_capacity_bound;
        ] );
      ( "weighted",
        [
          Alcotest.test_case "λ=0 returns base" `Quick
            test_lambda_zero_returns_base;
          Alcotest.test_case "entry gate dissolve (pinned)" `Quick
            test_entry_gate_dissolve_regression;
          Alcotest.test_case "lexicographic never worse" `Quick
            test_lexicographic_never_worse;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "rows well-formed" `Quick
            test_sweep_rows_well_formed;
          Alcotest.test_case "finds the counterexample" `Quick
            test_sweep_finds_the_counterexample;
          Alcotest.test_case "jobs byte-identical" `Quick
            test_sweep_jobs_byte_identical;
        ] );
    ]
