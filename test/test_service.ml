(* The batch synthesis service: canonical fingerprints, the solution
   cache, and the serve/submit protocol.  The load-bearing promises
   under test: a resubmission is a byte-identical cache hit, an
   isomorphic relabelling hits too, a deadline expiry answers without
   killing the batch, overflow is rejected with a reason, responses
   equal the one-shot CLI's bytes, and the whole stream is invariant
   under --jobs. *)

module Graph = Netlist.Graph
module P = Service.Protocol

(* Response times must be masked or the jobs-1-vs-jobs-4 stream diff
   below would be vacuously unequal. *)
let () = Unix.putenv "PAREDOWN_STABLE_TIMES" "1"

(* ------------------------------------------------------------------ *)
(* Harness: run the server over an in-memory batch via temp files. *)

let write_frames path frames =
  let oc = open_out_bin path in
  List.iter (P.write_frame oc) frames;
  close_out oc

let read_frames path =
  let ic = open_in_bin path in
  let rec go acc =
    match P.read_frame ic with
    | None -> List.rev acc
    | Some f -> go (f :: acc)
  in
  let frames = go [] in
  close_in ic;
  frames

let serve ?(config = Service.Server.default_config) frames =
  let req = Filename.temp_file "svc_req" ".bin" in
  let resp = Filename.temp_file "svc_resp" ".bin" in
  write_frames req frames;
  let ic = open_in_bin req in
  let oc = open_out_bin resp in
  let summary = Service.Server.run ~config ic oc in
  close_in ic;
  close_out oc;
  let out = read_frames resp in
  Sys.remove req;
  Sys.remove resp;
  (summary, out)

let responses frames =
  List.filter_map
    (fun f ->
      if P.is_summary f then None
      else
        match P.parse_response f with
        | Ok r -> Some r
        | Error e -> Alcotest.failf "bad response frame: %s" e)
    frames

let partition_request ?(backend = Service.Oneshot.Paredown) ?deadline_s ~id
    design =
  P.render_request
    {
      P.id;
      op = P.Partition { backend; deadline_s };
      design = Some design;
      design_text = None;
      inputs = 2;
      outputs = 2;
    }

let text_request ~id text =
  P.render_request
    {
      P.id;
      op = P.Partition { backend = Service.Oneshot.Paredown; deadline_s = None };
      design = None;
      design_text = Some text;
      inputs = 2;
      outputs = 2;
    }

let oneshot_report ?(backend = Service.Oneshot.Paredown) g =
  let shape = Core.Shape.make ~inputs:2 ~outputs:2 () in
  match Service.Oneshot.partition ~backend ~shape g with
  | Service.Oneshot.Done { report; _ }
  | Service.Oneshot.Expired { report; _ } ->
    report

let find_design name =
  match Designs.Library.find name with
  | Some d -> d.Designs.Design.network
  | None -> Alcotest.failf "library design %S missing" name

let check_cache = Alcotest.(check string)

let cache_of (r : P.response) = P.cache_to_string r.P.cache
let status_of (r : P.response) = P.status_to_string r.P.status

(* ------------------------------------------------------------------ *)
(* Resubmission: the second identical request is a byte-identical hit,
   in-batch and across a persisted restart. *)

let test_resubmit_hits () =
  let frames =
    [
      partition_request ~id:"a" "Podium Timer 3";
      partition_request ~id:"b" "Podium Timer 3";
      P.drain_frame;
    ]
  in
  let summary, out = serve frames in
  (match responses out with
   | [ a; b ] ->
     check_cache "first is a miss" "miss" (cache_of a);
     check_cache "resubmission is a hit" "hit" (cache_of b);
     Alcotest.(check string) "hit replays the same bytes" a.P.output b.P.output
   | rs -> Alcotest.failf "expected 2 responses, got %d" (List.length rs));
  Alcotest.(check int) "one miss" 1 summary.P.misses;
  Alcotest.(check int) "one hit" 1 summary.P.hits

let test_resubmit_across_restart () =
  let store = Filename.temp_file "svc_cache" ".json" in
  Sys.remove store;
  let config =
    { Service.Server.default_config with cache_path = Some store }
  in
  let frames = [ partition_request ~id:"a" "Noise At Night Detector"; P.drain_frame ] in
  let _, out1 = serve ~config frames in
  let s2, out2 = serve ~config frames in
  Alcotest.(check bool) "store file written" true (Sys.file_exists store);
  Alcotest.(check int) "restart serves from disk" 1 s2.P.hits;
  Alcotest.(check int) "no recompute" 0 s2.P.misses;
  (match (responses out1, responses out2) with
   | [ a ], [ b ] ->
     Alcotest.(check string) "byte-identical across restart" a.P.output
       b.P.output
   | _ -> Alcotest.fail "expected one response per run");
  (* A corrupted store must warn and start empty, never crash. *)
  let oc = open_out store in
  output_string oc "{\"schema\":\"something-else\"}";
  close_out oc;
  let warned = ref [] in
  let config =
    { config with Service.Server.log = (fun m -> warned := m :: !warned) }
  in
  let s3, _ = serve ~config frames in
  Alcotest.(check int) "corrupt store recomputes" 1 s3.P.misses;
  Alcotest.(check bool) "and warns" true
    (List.exists
       (fun m ->
         String.length m >= 5 && String.sub m 0 5 = "cache")
       !warned);
  Sys.remove store

(* ------------------------------------------------------------------ *)
(* Isomorphic relabelling: same structure under fresh node ids hits the
   canonical key and replays a valid solution in the new ids. *)

let relabel offset g =
  let g' =
    List.fold_left
      (fun acc id ->
        let n = Graph.node g id in
        fst (Graph.add ~id:(id + offset) acc n.Graph.descriptor))
      Graph.empty (Graph.node_ids g)
  in
  List.fold_left
    (fun acc (e : Graph.edge) ->
      Graph.connect acc
        ~src:(e.src.node + offset, e.src.port)
        ~dst:(e.dst.node + offset, e.dst.port))
    g' (Graph.edges g)

let quality_lines report =
  (* the inner-block and cost lines — id-independent solution quality *)
  String.split_on_char '\n' report
  |> List.filter (fun l ->
         String.length l > 0
         && (String.sub l 0 5 = "inner" || String.sub l 0 7 = "network"))

let test_relabel_hits () =
  let g = find_design "Podium Timer 3" in
  let g' = relabel 100 g in
  let frames =
    [
      text_request ~id:"orig" (Netlist.Textio.to_string g);
      text_request ~id:"relabeled" (Netlist.Textio.to_string g');
      P.drain_frame;
    ]
  in
  let summary, out = serve frames in
  Alcotest.(check int) "relabelling is the hit" 1 summary.P.hits;
  Alcotest.(check int) "only the original computes" 1 summary.P.misses;
  match responses out with
  | [ orig; rel ] ->
    Alcotest.(check string) "relabelled status ok" "ok" (status_of rel);
    check_cache "relabelled served from cache" "hit" (cache_of rel);
    Alcotest.(check (list string))
      "equal solution quality" (quality_lines orig.P.output)
      (quality_lines rel.P.output);
    Alcotest.(check string) "ids in the reply belong to the request"
      (oneshot_report g') rel.P.output
  | rs -> Alcotest.failf "expected 2 responses, got %d" (List.length rs)

let test_canon_relabel_digest () =
  List.iter
    (fun d ->
      let g = d.Designs.Design.network in
      let c = Service.Canon.of_graph g in
      let c' = Service.Canon.of_graph (relabel 1000 g) in
      Alcotest.(check bool)
        (d.Designs.Design.name ^ " canonises exactly")
        true
        (Service.Canon.exact c);
      Alcotest.(check string)
        (d.Designs.Design.name ^ " digest is label-free")
        (Service.Canon.digest c)
        (Service.Canon.digest c'))
    Designs.Library.table1

(* ------------------------------------------------------------------ *)
(* Deadline expiry answers that request and nothing else. *)

let test_deadline_expiry_survives () =
  let frames =
    [
      partition_request ~id:"slow" ~backend:Service.Oneshot.Exhaustive
        ~deadline_s:1e-6 "Timed Passage";
      partition_request ~id:"fast" "Podium Timer 3";
      P.drain_frame;
      (* a second batch proves the server outlives the expiry *)
      partition_request ~id:"after" "Podium Timer 3";
      P.drain_frame;
    ]
  in
  let summary, out = serve frames in
  (match responses out with
   | [ slow; fast; after ] ->
     Alcotest.(check string) "expired status" "deadline_expired"
       (status_of slow);
     check_cache "expired result is not cached" "uncached" (cache_of slow);
     Alcotest.(check string) "batchmate still answers" "ok" (status_of fast);
     Alcotest.(check string) "server survives into the next batch" "hit"
       (cache_of after)
   | rs -> Alcotest.failf "expected 3 responses, got %d" (List.length rs));
  Alcotest.(check int) "counted once" 1 summary.P.deadline_expired

(* ------------------------------------------------------------------ *)
(* Backpressure: a bounded queue rejects the overflow with a reason. *)

let test_backpressure () =
  let config = { Service.Server.default_config with queue = 3 } in
  let frames =
    List.map
      (fun i -> partition_request ~id:(Printf.sprintf "r%d" i) "Podium Timer 3")
      [ 1; 2; 3; 4; 5 ]
    @ [ P.drain_frame ]
  in
  let summary, out = serve ~config frames in
  let rs = responses out in
  Alcotest.(check int) "five responses" 5 (List.length rs);
  Alcotest.(check (list string))
    "first three accepted, last two rejected"
    [ "ok"; "ok"; "ok"; "rejected"; "rejected" ]
    (List.map status_of rs);
  Alcotest.(check int) "summary counts them" 2 summary.P.rejected;
  let last = List.nth rs 4 in
  Alcotest.(check string) "reason names the bound"
    "queue full (capacity 3)" last.P.output

(* ------------------------------------------------------------------ *)
(* Byte-identity against the one-shot path, on every Table 1 design and
   both fast backends. *)

let test_table1_byte_identity () =
  List.iter
    (fun backend ->
      List.iter
        (fun d ->
          let name = d.Designs.Design.name in
          let frames =
            [
              partition_request ~backend ~id:"x" name;
              partition_request ~backend ~id:"y" name;
              P.drain_frame;
            ]
          in
          let _, out = serve frames in
          match responses out with
          | [ x; y ] ->
            let expected = oneshot_report ~backend d.Designs.Design.network in
            Alcotest.(check string)
              (name ^ ": served = one-shot") expected x.P.output;
            check_cache (name ^ ": resubmit hits") "hit" (cache_of y);
            Alcotest.(check string)
              (name ^ ": hit = one-shot") expected y.P.output
          | rs -> Alcotest.failf "expected 2 responses, got %d" (List.length rs))
        Designs.Library.table1)
    [ Service.Oneshot.Paredown; Service.Oneshot.Aggregation ]

(* ------------------------------------------------------------------ *)
(* The full response stream is invariant under --jobs. *)

let test_jobs_invariance () =
  let frames =
    List.concat_map
      (fun d ->
        [
          partition_request ~id:(d.Designs.Design.name ^ "/p")
            d.Designs.Design.name;
          partition_request ~backend:Service.Oneshot.Aggregation
            ~id:(d.Designs.Design.name ^ "/a")
            d.Designs.Design.name;
        ])
      Designs.Library.table1
    @ [ P.drain_frame ]
  in
  let run jobs =
    serve ~config:{ Service.Server.default_config with jobs } frames
  in
  let s1, out1 = run 1 in
  let s4, out4 = run 4 in
  Alcotest.(check (list string)) "streams byte-identical across jobs"
    out1 out4;
  Alcotest.(check int) "same misses" s1.P.misses s4.P.misses;
  Alcotest.(check int) "same hits" s1.P.hits s4.P.hits

(* A request that raises answers [error] and spares the batch — and the
   failure report is the lowest-index one, like the sequential path. *)
let test_error_isolated () =
  let frames =
    [
      partition_request ~id:"bad" "No Such Design";
      partition_request ~id:"good" "Podium Timer 3";
      P.drain_frame;
    ]
  in
  let summary, out = serve frames in
  (match responses out with
   | [ bad; good ] ->
     Alcotest.(check string) "bad request errors" "error" (status_of bad);
     Alcotest.(check string) "good request unaffected" "ok" (status_of good)
   | rs -> Alcotest.failf "expected 2 responses, got %d" (List.length rs));
  Alcotest.(check int) "counted" 1 summary.P.errors

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "service"
    [
      ( "cache",
        [
          Alcotest.test_case "resubmit hits byte-identically" `Quick
            test_resubmit_hits;
          Alcotest.test_case "persisted store survives restart" `Quick
            test_resubmit_across_restart;
          Alcotest.test_case "isomorphic relabelling hits" `Quick
            test_relabel_hits;
          Alcotest.test_case "canonical digest is label-free on Table 1"
            `Quick test_canon_relabel_digest;
        ] );
      ( "server",
        [
          Alcotest.test_case "deadline expiry answers, server survives"
            `Quick test_deadline_expiry_survives;
          Alcotest.test_case "bounded queue rejects with reason" `Quick
            test_backpressure;
          Alcotest.test_case "errors are per-request" `Quick
            test_error_isolated;
        ] );
      ( "identity",
        [
          Alcotest.test_case "served = one-shot on Table 1" `Quick
            test_table1_byte_identity;
          Alcotest.test_case "stream invariant under --jobs" `Quick
            test_jobs_invariance;
        ] );
    ]
