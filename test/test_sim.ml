(* Unit and property tests for the discrete-event simulator, stimulus
   scripts, and co-simulation equivalence checking. *)

module Graph = Netlist.Graph
module C = Eblock.Catalog

let check = Alcotest.check
let value = Testlib.value

let bool_value = Alcotest.testable Behavior.Ast.pp_value Behavior.Ast.equal_value

(* --- Power-on sweep ----------------------------------------------------- *)

let test_power_on_consistency () =
  (* NOT of an off light-sensor must already read true at power-on *)
  let g, _, inner, led = Testlib.chain [ C.not_gate ] in
  let engine = Sim.Engine.create g in
  check value "not output after sweep" (Bool true)
    (Sim.Engine.port_value engine (List.hd inner) 0);
  check value "primary output sees it" (Bool true)
    (Sim.Engine.output_value engine led)

let test_power_on_no_events () =
  let g, _, _, _ = Testlib.chain [ C.not_gate; C.toggle ] in
  let engine = Sim.Engine.create g in
  check Alcotest.bool "no pending events" false (Sim.Engine.step engine);
  check Alcotest.int "clock at zero" 0 (Sim.Engine.now engine)

(* --- Basic propagation --------------------------------------------------- *)

let test_packet_propagation () =
  let g, sensor, inner, led = Testlib.chain [ C.not_gate; C.not_gate ] in
  ignore inner;
  let engine = Sim.Engine.create g in
  check value "initially false (double negation)" (Bool false)
    (Sim.Engine.output_value engine led);
  Sim.Engine.set_sensor engine sensor true;
  Sim.Engine.settle engine;
  check value "true propagates" (Bool true)
    (Sim.Engine.output_value engine led);
  (* 3 hops at wire_delay each *)
  check Alcotest.int "latency = hops" (3 * Sim.Engine.wire_delay)
    (Sim.Engine.now engine)

let test_change_driven () =
  (* setting the sensor to its current value generates no activity *)
  let g, sensor, _, _ = Testlib.chain [ C.not_gate ] in
  let engine = Sim.Engine.create g in
  Sim.Engine.settle engine;
  let before = Sim.Engine.activation_count engine in
  Sim.Engine.set_sensor engine sensor false;
  Sim.Engine.settle engine;
  check Alcotest.int "no activations" before
    (Sim.Engine.activation_count engine)

let test_trace () =
  let g, sensor, _, led = Testlib.chain [ C.not_gate ] in
  let engine = Sim.Engine.create g in
  Sim.Engine.set_sensor_at engine ~time:5 sensor true;
  Sim.Engine.set_sensor_at engine ~time:9 sensor false;
  Sim.Engine.settle engine;
  check
    (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int bool_value))
    "output changes recorded"
    [ (7, led, Bool false); (11, led, Bool true) ]
    (Sim.Engine.trace engine)

(* --- Timed blocks end to end --------------------------------------------- *)

let run_with_pulses g sensor pulses =
  let engine = Sim.Engine.create g in
  List.iter
    (fun (time, v) -> Sim.Engine.set_sensor_at engine ~time sensor v)
    pulses;
  Sim.Engine.settle engine;
  engine

let test_delay_block () =
  let g, sensor, _, led = Testlib.chain [ C.delay ~ticks:10 ] in
  let engine = run_with_pulses g sensor [ (1, true) ] in
  let trace = Sim.Engine.trace engine in
  (* rise at 1, arrives at delay at 2, fires at 12, led at 13 *)
  check
    (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int bool_value))
    "transport latency" [ (13, led, Bool true) ] trace

let test_delay_inertial () =
  (* two changes inside the window: only the last survives *)
  let g, sensor, _, led = Testlib.chain [ C.delay ~ticks:10 ] in
  let engine = run_with_pulses g sensor [ (1, true); (4, false) ] in
  check value "glitch swallowed" (Bool false)
    (Sim.Engine.output_value engine led);
  check
    (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int bool_value))
    "no spurious rise" [] (Sim.Engine.trace engine)

let test_pulse_gen_width () =
  let g, sensor, _, _led = Testlib.chain [ C.pulse_gen ~width:6 ] in
  let engine = run_with_pulses g sensor [ (1, true) ] in
  match Sim.Engine.trace engine with
  | [ (t_rise, _, Behavior.Ast.Bool true); (t_fall, _, Behavior.Ast.Bool false) ] ->
    check Alcotest.int "pulse width" 6 (t_fall - t_rise)
  | trace ->
    Alcotest.failf "unexpected trace (%d entries)" (List.length trace)

let test_prolong_block () =
  let g, sensor, _, led = Testlib.chain [ C.prolong ~ticks:8 ] in
  let engine = run_with_pulses g sensor [ (1, true); (5, false) ] in
  match Sim.Engine.trace engine with
  | [ (_, _, Behavior.Ast.Bool true); (t_fall, _, Behavior.Ast.Bool false) ] ->
    (* falls 8 ticks after the falling edge reaches the block (t=6) *)
    check Alcotest.int "prolonged fall" (6 + 8 + 1) t_fall;
    check value "finally off" (Bool false) (Sim.Engine.output_value engine led)
  | trace ->
    Alcotest.failf "unexpected trace (%d entries)" (List.length trace)

let test_prolong_retrigger () =
  (* a new rise inside the prolong window cancels the pending fall *)
  let g, sensor, _, led = Testlib.chain [ C.prolong ~ticks:8 ] in
  let engine =
    run_with_pulses g sensor [ (1, true); (3, false); (5, true) ]
  in
  ignore led;
  check
    (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int bool_value))
    "single rise, no fall"
    [ (3, List.nth (Graph.primary_outputs g) 0, Behavior.Ast.Bool true) ]
    (Sim.Engine.trace engine)

let test_toggle_in_network () =
  let g, sensor, _, led = Testlib.chain [ C.toggle ] in
  let engine =
    run_with_pulses g sensor
      [ (1, true); (5, false); (9, true); (13, false) ]
  in
  ignore led;
  let values =
    List.map (fun (_, _, v) -> v) (Sim.Engine.trace engine)
  in
  check (Alcotest.list bool_value) "on then off"
    [ Bool true; Bool false ] values

let test_blinker_oscillates () =
  let g, sensor, _, _ = Testlib.chain [ C.blinker ~period:5 ] in
  let engine = Sim.Engine.create g in
  Sim.Engine.set_sensor_at engine ~time:1 sensor true;
  Sim.Engine.run_until engine 40;
  let flips = List.length (Sim.Engine.trace engine) in
  check Alcotest.bool "several flips while held" true (flips >= 5);
  Sim.Engine.set_sensor engine sensor false;
  Sim.Engine.settle engine;
  check Alcotest.bool "stops when released" true
    (match Sim.Engine.trace engine with
     | [] -> false
     | trace ->
       (match List.rev trace with
        | (_, _, Behavior.Ast.Bool false) :: _ -> true
        | _ -> false))

(* --- Guards ---------------------------------------------------------------- *)

let test_engine_guards () =
  let g, sensor, inner, led = Testlib.chain [ C.not_gate ] in
  let engine = Sim.Engine.create g in
  let invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s did not raise" name
  in
  invalid "set_sensor on non-sensor" (fun () ->
      Sim.Engine.set_sensor engine (List.hd inner) true);
  invalid "output_value on non-output" (fun () ->
      Sim.Engine.output_value engine sensor |> ignore);
  invalid "port range" (fun () ->
      Sim.Engine.port_value engine led 0 |> ignore);
  Sim.Engine.set_sensor_at engine ~time:10 sensor true;
  Sim.Engine.run_until engine 20;
  invalid "past stimulus" (fun () ->
      Sim.Engine.set_sensor_at engine ~time:5 sensor false)

let test_settle_limit () =
  let g, sensor, _, _ = Testlib.chain [ C.blinker ~period:2 ] in
  let engine = Sim.Engine.create g in
  Sim.Engine.set_sensor engine sensor true;
  match Sim.Engine.settle ~limit:50 engine with
  | exception Sim.Engine.Event_limit_exceeded { clock; queue_depth; last_node }
    ->
    (* the exception carries enough context to classify the livelock *)
    check Alcotest.bool "clock advanced" true (clock > 0);
    check Alcotest.bool "events still pending" true (queue_depth > 0);
    (match last_node with
     | Some id -> check Alcotest.bool "last node in graph" true (Graph.mem g id)
     | None -> Alcotest.fail "last active node not recorded")
  | () -> Alcotest.fail "settle terminated on an oscillator"

(* --- Tie-order determinism ---------------------------------------------- *)

let shuffled_observation g seed script =
  let engine = Sim.Engine.create ~tie_order:(Sim.Engine.Shuffled seed) g in
  let obs = Sim.Stimulus.settled_outputs engine script in
  (obs, Sim.Engine.trace engine, Sim.Engine.packet_count engine)

let test_shuffled_same_seed_deterministic () =
  List.iter
    (fun g ->
      let script =
        Sim.Stimulus.random ~rng:(Prng.create 17)
          ~sensors:(Graph.sensors g) ~steps:25 ~spacing:10
      in
      List.iter
        (fun seed ->
          check Alcotest.bool
            (Printf.sprintf "seed %d replays identically" seed)
            true
            (shuffled_observation g seed script
             = shuffled_observation g seed script))
        [ 1; 2; 42 ])
    [
      Testlib.podium;
      Designs.Library.two_zone_security.Designs.Design.network;
      Randgen.Generator.generate ~rng:(Prng.create 879411) ~inner:5 ();
    ]

let test_shuffled_different_seeds_may_differ () =
  (* on a race-free design every tie order agrees; on a racy one the
     shuffled orders genuinely resolve races differently, so some pair of
     seeds must disagree *)
  let racy =
    Randgen.Generator.generate ~rng:(Prng.create 879411) ~inner:5 ()
  in
  let script =
    Sim.Stimulus.random ~rng:(Prng.create 879411)
      ~sensors:(Graph.sensors racy) ~steps:25 ~spacing:10
  in
  let reference = shuffled_observation racy 1 script in
  check Alcotest.bool "some seed resolves the races differently" true
    (List.exists
       (fun seed -> shuffled_observation racy seed script <> reference)
       [ 2; 3; 4; 5; 6; 7; 8 ])

let test_cyclic_rejected () =
  let g, s = Graph.add Graph.empty C.button in
  let g, a = Graph.add g C.and2 in
  let g = Graph.connect g ~src:(s, 0) ~dst:(a, 0) in
  let g = Graph.connect g ~src:(a, 0) ~dst:(a, 1) in
  match Sim.Engine.create g with
  | exception Graph.Structural_error _ -> ()
  | _ -> Alcotest.fail "engine accepted a cyclic network"

(* --- Stimulus --------------------------------------------------------------- *)

let test_random_script_deterministic () =
  let make seed =
    Sim.Stimulus.random ~rng:(Prng.create seed) ~sensors:[ 1; 2; 3 ]
      ~steps:25 ~spacing:10
  in
  check Alcotest.bool "same seed, same script" true (make 5 = make 5);
  check Alcotest.bool "different seed differs" true (make 5 <> make 6)

let test_random_script_toggles () =
  (* each step flips the tracked state of its sensor: consecutive steps on
     one sensor alternate *)
  let script =
    Sim.Stimulus.random ~rng:(Prng.create 3) ~sensors:[ 7 ] ~steps:6
      ~spacing:4
  in
  let values = List.map (fun s -> s.Sim.Stimulus.value) script in
  check (Alcotest.list Alcotest.bool) "alternates"
    [ true; false; true; false; true; false ] values;
  check Alcotest.bool "times strictly increase" true
    (let times = List.map (fun s -> s.Sim.Stimulus.time) script in
     List.for_all2 ( < ) (0 :: times) (times @ [ max_int ])
     |> fun _ -> List.sort compare times = times)

let test_settled_outputs () =
  let g, sensor, _, led = Testlib.chain [ C.not_gate ] in
  let engine = Sim.Engine.create g in
  let script =
    Sim.Stimulus.
      [
        { time = 5; sensor; value = true };
        { time = 15; sensor; value = false };
      ]
  in
  let obs = Sim.Stimulus.settled_outputs engine script in
  check Alcotest.int "one observation per step" 2 (List.length obs);
  check
    (Alcotest.list bool_value)
    "settled values"
    [ Bool false; Bool true ]
    (List.map (fun (_, outs) -> List.assoc led outs) obs)

(* --- Packet accounting --------------------------------------------------- *)

let test_packet_count () =
  let g, sensor, _, _ = Testlib.chain [ C.not_gate; C.not_gate ] in
  let engine = Sim.Engine.create g in
  check Alcotest.int "power-on sends no packets" 0
    (Sim.Engine.packet_count engine);
  Sim.Engine.set_sensor engine sensor true;
  Sim.Engine.settle engine;
  (* sensor->not, not->not, not->led *)
  check Alcotest.int "one packet per hop" 3 (Sim.Engine.packet_count engine)

(* --- VCD export ------------------------------------------------------------ *)

let test_vcd_structure () =
  let g, sensor, _, _ = Testlib.chain [ C.not_gate ] in
  let script =
    Sim.Stimulus.
      [ { time = 5; sensor; value = true };
        { time = 9; sensor; value = false } ]
  in
  let vcd = Sim.Vcd.record g script in
  List.iter
    (fun needle ->
      check Alcotest.bool needle true (Testlib.contains vcd needle))
    [ "$timescale"; "$var wire 1 ! "; "$enddefinitions"; "$dumpvars";
      "#7\n0!"; "#11\n1!" ]

let test_vcd_extra_probes () =
  let g = Testlib.podium in
  let script =
    Sim.Stimulus.
      [ { time = 2; sensor = 1; value = true } ]
  in
  let vcd =
    Sim.Vcd.record
      ~extra_probes:[ { Sim.Vcd.node = 2; port = 0; label = "toggle q" } ]
      g script
  in
  check Alcotest.bool "probe declared" true
    (Testlib.contains vcd "toggle_q");
  (* 3 outputs + 1 extra probe -> 4 $var lines *)
  let vars =
    List.length
      (List.filter
         (fun l -> String.length l >= 4 && String.sub l 0 4 = "$var")
         (String.split_on_char '\n' vcd))
  in
  check Alcotest.int "var count" 4 vars

let test_vcd_truncates_oscillator () =
  let g, sensor, _, _ = Testlib.chain [ C.blinker ~period:2 ] in
  let script = Sim.Stimulus.[ { time = 1; sensor; value = true } ] in
  (* must terminate despite the self-retriggering network *)
  let vcd = Sim.Vcd.record g script in
  check Alcotest.bool "nonempty" true (String.length vcd > 100)

(* --- Equivalence ------------------------------------------------------------- *)

let test_equiv_identical () =
  let g = Testlib.podium in
  Testlib.check_ok "identical networks"
    (Result.map_error
       (Format.asprintf "%a" Sim.Equiv.pp_mismatch)
       (Sim.Equiv.check_random ~reference:g ~candidate:g ~seed:4 ~steps:40))

let test_equiv_detects_difference () =
  let build gate =
    let g, s1 = Graph.add Graph.empty C.button in
    let g, s2 = Graph.add g C.button in
    let g, a = Graph.add g gate in
    let g, l = Graph.add g C.led in
    let g = Graph.connect g ~src:(s1, 0) ~dst:(a, 0) in
    let g = Graph.connect g ~src:(s2, 0) ~dst:(a, 1) in
    Graph.connect g ~src:(a, 0) ~dst:(l, 0)
  in
  match
    Sim.Equiv.check_random ~reference:(build C.or2) ~candidate:(build C.and2)
      ~seed:1 ~steps:30
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "or2 vs and2 not distinguished"

let test_timing_sensitivity () =
  (* a latch whose trigger path (1 hop) outruns its reset path (2 hops):
     deterministic under fixed delays, but the settled behaviour depends
     on the delay assignment *)
  let hazard =
    Randgen.Generator.generate ~rng:(Prng.create 578738) ~inner:3 ()
  in
  check Alcotest.bool "hazard design flagged" true
    (Sim.Equiv.timing_sensitive_random hazard ~seed:578738 ~steps:25);
  (* every library design is timing-insensitive: synthesis is exactly
     behaviour-preserving on them *)
  List.iter
    (fun d ->
      check Alcotest.bool
        (d.Designs.Design.name ^ " timing-insensitive")
        false
        (Sim.Equiv.timing_sensitive_random d.Designs.Design.network ~seed:9
           ~steps:25))
    Designs.Library.all

let test_race_detection () =
  (* this generated design latches a trip_reset from two same-length paths
     off one button — the counterexample that motivated the detector *)
  let racy =
    Randgen.Generator.generate ~rng:(Prng.create 879411) ~inner:5 ()
  in
  check Alcotest.bool "racy design flagged" true
    (Sim.Equiv.race_sensitive_random racy ~seed:879411 ~steps:25);
  check Alcotest.bool "podium race-free" false
    (Sim.Equiv.race_sensitive_random Testlib.podium ~seed:4 ~steps:40);
  List.iter
    (fun d ->
      check Alcotest.bool
        (d.Designs.Design.name ^ " race-free")
        false
        (Sim.Equiv.race_sensitive_random d.Designs.Design.network ~seed:9
           ~steps:30))
    Designs.Library.table1

let test_equiv_requires_same_interface () =
  let g1, _, _, _ = Testlib.chain [ C.not_gate ] in
  let g2 =
    let g, s = Graph.add Graph.empty C.button in
    let g, s' = Graph.add g C.button in
    let g, a = Graph.add g C.and2 in
    let g, l = Graph.add g C.led in
    let g = Graph.connect g ~src:(s, 0) ~dst:(a, 0) in
    let g = Graph.connect g ~src:(s', 0) ~dst:(a, 1) in
    Graph.connect g ~src:(a, 0) ~dst:(l, 0)
  in
  match Sim.Equiv.check_random ~reference:g1 ~candidate:g2 ~seed:1 ~steps:5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "interface mismatch accepted"

(* --- Properties ----------------------------------------------------------------- *)

let prop_simulation_deterministic =
  QCheck.Test.make ~name:"same script, same settled outputs" ~count:40
    (Testlib.network_arbitrary ~max_inner:15 ()) (fun (_, seed, g) ->
      let script =
        Sim.Stimulus.random ~rng:(Prng.create seed)
          ~sensors:(Graph.sensors g) ~steps:15 ~spacing:25
      in
      let run () =
        Sim.Stimulus.settled_outputs (Sim.Engine.create g) script
      in
      run () = run ())

let prop_network_equivalent_to_itself =
  QCheck.Test.make ~name:"every generated network equals itself" ~count:30
    (Testlib.network_arbitrary ~max_inner:12 ()) (fun (_, seed, g) ->
      match
        Sim.Equiv.check_random ~reference:g ~candidate:g ~seed ~steps:20
      with
      | Ok () -> true
      | Error _ -> false)

let () =
  Alcotest.run "sim"
    [
      ( "power-on",
        [
          Alcotest.test_case "consistent outputs" `Quick
            test_power_on_consistency;
          Alcotest.test_case "no initial events" `Quick
            test_power_on_no_events;
        ] );
      ( "propagation",
        [
          Alcotest.test_case "packets" `Quick test_packet_propagation;
          Alcotest.test_case "change driven" `Quick test_change_driven;
          Alcotest.test_case "trace" `Quick test_trace;
        ] );
      ( "timed blocks",
        [
          Alcotest.test_case "delay latency" `Quick test_delay_block;
          Alcotest.test_case "delay inertial" `Quick test_delay_inertial;
          Alcotest.test_case "pulse width" `Quick test_pulse_gen_width;
          Alcotest.test_case "prolong" `Quick test_prolong_block;
          Alcotest.test_case "prolong retrigger" `Quick
            test_prolong_retrigger;
          Alcotest.test_case "toggle" `Quick test_toggle_in_network;
          Alcotest.test_case "blinker" `Quick test_blinker_oscillates;
        ] );
      ( "guards",
        [
          Alcotest.test_case "argument validation" `Quick test_engine_guards;
          Alcotest.test_case "settle limit" `Quick test_settle_limit;
          Alcotest.test_case "cyclic rejected" `Quick test_cyclic_rejected;
        ] );
      ( "tie order",
        [
          Alcotest.test_case "same seed deterministic" `Quick
            test_shuffled_same_seed_deterministic;
          Alcotest.test_case "different seeds may differ" `Quick
            test_shuffled_different_seeds_may_differ;
        ] );
      ( "stimulus",
        [
          Alcotest.test_case "deterministic" `Quick
            test_random_script_deterministic;
          Alcotest.test_case "toggling steps" `Quick
            test_random_script_toggles;
          Alcotest.test_case "settled outputs" `Quick test_settled_outputs;
        ] );
      ( "packets",
        [ Alcotest.test_case "count" `Quick test_packet_count ] );
      ( "vcd",
        [
          Alcotest.test_case "structure" `Quick test_vcd_structure;
          Alcotest.test_case "extra probes" `Quick test_vcd_extra_probes;
          Alcotest.test_case "oscillator truncation" `Quick
            test_vcd_truncates_oscillator;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "identical" `Quick test_equiv_identical;
          Alcotest.test_case "detects difference" `Quick
            test_equiv_detects_difference;
          Alcotest.test_case "race detection" `Quick test_race_detection;
          Alcotest.test_case "timing sensitivity" `Quick
            test_timing_sensitivity;
          Alcotest.test_case "interface check" `Quick
            test_equiv_requires_same_interface;
        ] );
      ( "properties",
        Testlib.qtests
          [ prop_simulation_deterministic; prop_network_equivalent_to_itself ] );
    ]
