(* The network observatory: the zero-cost-when-off contract, strike
   conservation against Fault.stats, blame attribution summing to the
   measured severity, jobs-invariant reports, the timeline and VCD
   marker renderings, and the disabled-path overhead bound
   (doc/network-telemetry.md). *)

module Graph = Netlist.Graph

let check = Alcotest.check

let two_zone = Designs.Library.two_zone_security.Designs.Design.network

let script g ~seed ~steps =
  Sim.Stimulus.random ~rng:(Prng.create seed) ~sensors:(Graph.sensors g)
    ~steps ~spacing:15

(* --- Off path: arming a collector never changes the simulation -------- *)

let test_armed_run_matches_unarmed () =
  let g = two_zone in
  let script = script g ~seed:21 ~steps:30 in
  let run telemetry =
    let engine =
      match telemetry with
      | None -> Sim.Engine.create ~faults:(Sim.Fault.drop_all ~seed:7 0.05) g
      | Some telemetry ->
        Sim.Engine.create ~faults:(Sim.Fault.drop_all ~seed:7 0.05) ~telemetry
          g
    in
    let outputs = Sim.Stimulus.settled_outputs engine script in
    (outputs, Sim.Engine.packet_count engine, Sim.Engine.fault_stats engine)
  in
  let plain = run None in
  let observed = run (Some (Sim.Telemetry.create ())) in
  (* Same seeded faults, same PRNG draws, same packets: the collector is
     a pure observer. *)
  check Alcotest.bool "settled outputs identical" true (plain = observed)

(* --- Conservation: telemetry totals = engine + fault accounting ------- *)

let test_strikes_match_fault_stats () =
  let g = two_zone in
  let script = script g ~seed:21 ~steps:30 in
  let faults =
    Sim.Fault.degrade_all ~seed:13 ~drop:0.05 ~duplicate:0.05 ~corrupt:0.05
      ~jitter:3 ()
  in
  let telemetry = Sim.Telemetry.create () in
  let engine = Sim.Engine.create ~faults ~telemetry g in
  ignore (Sim.Stimulus.settled_outputs engine script);
  let stats =
    match Sim.Engine.fault_stats engine with
    | Some s -> s
    | None -> Alcotest.fail "fault stats missing"
  in
  let links = Sim.Telemetry.links telemetry in
  let tot f = List.fold_left (fun acc (_, l) -> acc + f l) 0 links in
  check Alcotest.int "drops" stats.Sim.Fault.drops
    (tot (fun l -> l.Sim.Telemetry.drops));
  check Alcotest.int "duplicates" stats.Sim.Fault.duplicates
    (tot (fun l -> l.Sim.Telemetry.duplicates));
  check Alcotest.int "corruptions" stats.Sim.Fault.corruptions
    (tot (fun l -> l.Sim.Telemetry.corruptions));
  check Alcotest.int "jittered" stats.Sim.Fault.jittered
    (tot (fun l -> l.Sim.Telemetry.jittered));
  check Alcotest.int "dead losses" stats.Sim.Fault.dead_link_losses
    (tot (fun l -> l.Sim.Telemetry.dead_losses));
  (* every send either delivers (possibly twice) or is lost *)
  check Alcotest.int "sends = deliveries - duplicates + drops + dead"
    (tot (fun l -> l.Sim.Telemetry.sends))
    (tot (fun l -> l.Sim.Telemetry.deliveries)
    - stats.Sim.Fault.duplicates + stats.Sim.Fault.drops
    + stats.Sim.Fault.dead_link_losses);
  check Alcotest.int "engine packet count = telemetry deliveries"
    (Sim.Engine.packet_count engine)
    (tot (fun l -> l.Sim.Telemetry.deliveries))

(* --- Merge: fold order cannot matter ---------------------------------- *)

let test_merge_is_order_independent () =
  let g = two_zone in
  let collect seed =
    let telemetry = Sim.Telemetry.create () in
    let engine =
      Sim.Engine.create ~faults:(Sim.Fault.drop_all ~seed 0.1) ~telemetry g
    in
    ignore (Sim.Stimulus.settled_outputs engine (script g ~seed ~steps:20));
    telemetry
  in
  let a = collect 1 and b = collect 2 and c = collect 3 in
  let report t = Obs.Json.to_string (Sim.Telemetry.report_json g t) in
  let ab_c = Sim.Telemetry.merge (Sim.Telemetry.merge a b) c in
  let c_ba = Sim.Telemetry.merge c (Sim.Telemetry.merge b a) in
  check Alcotest.string "merge report is fold-order independent"
    (report ab_c) (report c_ba)

(* --- Blame: components sum to the estimate's severity ----------------- *)

let blame_sums_for family =
  let g = Designs.Library.entry_gate_detector.Designs.Design.network in
  let config =
    { Reliability.Estimator.default_config with trials = 24; family }
  in
  let est = Reliability.Estimator.estimate_network config g in
  let b = est.Reliability.Estimator.blame in
  check (Alcotest.float 1e-9)
    (Reliability.Family.to_string family ^ ": blame sums to severity")
    est.Reliability.Estimator.mean
    (Reliability.Estimator.blame_total b);
  List.iter
    (fun (_, v) ->
      check Alcotest.bool "link mass nonnegative" true (v >= 0.))
    b.Reliability.Estimator.b_links;
  List.iter
    (fun (_, v) ->
      check Alcotest.bool "node mass nonnegative" true (v >= 0.))
    b.Reliability.Estimator.b_nodes

let test_blame_sums_to_severity () =
  List.iter blame_sums_for
    [
      Reliability.Family.Drop { rate = 0.15 };
      Reliability.Estimator.default_config.family;
      Reliability.Family.Chaos
        { drop = 0.05; duplicate = 0.05; corrupt = 0.05; jitter = 2 };
    ]

let test_blame_table_renders () =
  let g = Designs.Library.entry_gate_detector.Designs.Design.network in
  let est =
    Reliability.Estimator.estimate_network
      Reliability.Estimator.default_config g
  in
  let table =
    Reliability.Estimator.blame_table est.Reliability.Estimator.blame
  in
  check Alcotest.bool "table has a total row" true
    (Testlib.contains table "total");
  (* default family is a brownout: the mass lands on node resets *)
  check Alcotest.bool "brownout blame names a node" true
    (Testlib.contains table "node ")

(* --- Determinism: --jobs cannot change a report ----------------------- *)

let observe ~jobs =
  Experiments.Netobs.observe_network ~jobs ~name:"Entry Gate Detector"
    Designs.Library.entry_gate_detector.Designs.Design.network

let test_observation_jobs_invariant () =
  let report o =
    Obs.Json.to_string ~indent:2 (Experiments.Netobs.report_json o)
  in
  let r1 = report (observe ~jobs:1) and r2 = report (observe ~jobs:2) in
  check Alcotest.string "paredown-netobs report byte-identical" r1 r2

let test_report_covers_whole_graph () =
  let o = observe ~jobs:1 in
  match Experiments.Netobs.report_json o with
  | Obs.Json.Obj fields ->
    let arr name =
      match List.assoc_opt name fields with
      | Some (Obs.Json.Arr xs) -> xs
      | _ -> Alcotest.failf "report field %s missing or not an array" name
    in
    let g = Designs.Library.entry_gate_detector.Designs.Design.network in
    check Alcotest.int "one entry per node"
      (List.length (Graph.node_ids g))
      (List.length (arr "nodes"));
    check Alcotest.int "one entry per directed link"
      (List.length (Graph.edges g))
      (List.length (arr "links"));
    check Alcotest.bool "schema is versioned" true
      (List.assoc_opt "schema" fields
       = Some (Obs.Json.Str Sim.Telemetry.schema_name))
  | _ -> Alcotest.fail "report is not an object"

(* --- Timeline --------------------------------------------------------- *)

let test_timeline_records_lanes () =
  let g = two_zone in
  let config =
    { Experiments.Netobs.default_config with steps = 10; trials = 2 }
  in
  let recording = Experiments.Netobs.record_timeline ~config g in
  check Alcotest.bool "timeline captured events" true
    (Sim.Telemetry.timeline_events recording > 0);
  let path = Filename.temp_file "paredown_timeline" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sim.Telemetry.write_timeline g recording path;
      let ic = open_in path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      check Alcotest.bool "one thread_name lane per node" true
        (Testlib.contains text "thread_name");
      check Alcotest.bool "instants carry the event kind" true
        (Testlib.contains text "deliver "))

let test_timeline_cap_drops_oldest () =
  let t = Sim.Telemetry.create ~timeline:true ~timeline_cap:3 () in
  let g = two_zone in
  let engine = Sim.Engine.create ~telemetry:t g in
  ignore (Sim.Stimulus.settled_outputs engine (script g ~seed:5 ~steps:10));
  check Alcotest.int "capped" 3 (Sim.Telemetry.timeline_events t);
  check Alcotest.bool "dropped count reported" true
    (Sim.Telemetry.timeline_dropped t > 0)

(* --- VCD fault markers ------------------------------------------------ *)

let test_vcd_fault_markers () =
  let g = two_zone in
  let script = script g ~seed:21 ~steps:30 in
  let faulty =
    Sim.Vcd.record ~faults:(Sim.Fault.drop_all ~seed:7 0.2) g script
  in
  check Alcotest.bool "faults scope declared" true
    (Testlib.contains faulty "$scope module faults $end");
  List.iter
    (fun signal ->
      check Alcotest.bool (signal ^ " declared") true
        (Testlib.contains faulty signal))
    [ "fault_drops"; "fault_duplicates"; "fault_corruptions";
      "fault_jittered"; "fault_dead_losses"; "fault_resets"; "fault_stuck" ];
  (* a 20% drop plan over this script strikes at least once, so the
     drops counter leaves zero *)
  check Alcotest.bool "a drop strike is recorded" true
    (Testlib.contains faulty "b0000000000000001");
  let clean = Sim.Vcd.record g script in
  check Alcotest.bool "no markers without a plan" false
    (Testlib.contains clean "fault_drops")

(* --- Disabled-path overhead ------------------------------------------- *)

let test_disabled_overhead () =
  let o = Experiments.Perf.telemetry_overhead ~iters:200_000 () in
  check Alcotest.bool
    (Printf.sprintf
       "disabled overhead %.5f of the sim sweep (guard %.2f ns x %d hook \
        sites) stays under 1%%"
       o.Experiments.Perf.t_ratio o.Experiments.Perf.t_guard_ns
       o.Experiments.Perf.t_events)
    true
    (o.Experiments.Perf.t_ratio <= 0.01)

let () =
  Alcotest.run "telemetry"
    [
      ( "observer",
        [
          Alcotest.test_case "armed run matches unarmed" `Quick
            test_armed_run_matches_unarmed;
          Alcotest.test_case "strikes match fault stats" `Quick
            test_strikes_match_fault_stats;
          Alcotest.test_case "merge is order independent" `Quick
            test_merge_is_order_independent;
        ] );
      ( "blame",
        [
          Alcotest.test_case "sums to severity across families" `Slow
            test_blame_sums_to_severity;
          Alcotest.test_case "table renders sites" `Slow
            test_blame_table_renders;
        ] );
      ( "report",
        [
          Alcotest.test_case "jobs invariant" `Slow
            test_observation_jobs_invariant;
          Alcotest.test_case "covers the whole graph" `Quick
            test_report_covers_whole_graph;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "records per-node lanes" `Quick
            test_timeline_records_lanes;
          Alcotest.test_case "cap drops oldest" `Quick
            test_timeline_cap_drops_oldest;
        ] );
      ( "vcd",
        [
          Alcotest.test_case "fault markers" `Quick test_vcd_fault_markers;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "disabled hook guard is under 1% of a sweep"
            `Quick test_disabled_overhead;
        ] );
    ]
