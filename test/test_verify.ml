(* Tests for Verify v2: the three-tier equivalence subsystem (exhaustive
   proof, bounded sequential proof, differential co-simulation) and the
   counterexample shrinker. *)

module Graph = Netlist.Graph
module Catalog = Eblock.Catalog

let check = Alcotest.check
let set = Testlib.set
let podium = Testlib.podium

(* --- tier 2: bounded sequential proof ----------------------------------- *)

let test_sequential_merge_bounded () =
  (* not -> toggle is stateful but timer-free: the product state space is
     tiny and must close with no divergence *)
  let g, _, inner, _ = Testlib.chain [ Catalog.not_gate; Catalog.toggle ] in
  match Codegen.Verify.check_partition g (Netlist.Node_id.set_of_list inner) with
  | Codegen.Verify.Bounded_equivalent { states; depth } ->
    check Alcotest.bool "explored more than the initial state" true (states >= 2);
    check Alcotest.bool "needed at least one input step" true (depth >= 1)
  | v ->
    Alcotest.failf "expected Bounded_equivalent, got %a"
      Codegen.Verify.pp_status v

let test_toggle_chain_bounded () =
  let g, _, inner, _ = Testlib.chain [ Catalog.toggle; Catalog.not_gate ] in
  match Codegen.Verify.check_partition g (Netlist.Node_id.set_of_list inner) with
  | Codegen.Verify.Bounded_equivalent _ -> ()
  | v ->
    Alcotest.failf "expected Bounded_equivalent, got %a"
      Codegen.Verify.pp_status v

let test_exhausted_budget_falls_back () =
  (* a one-state budget cannot close even the tiny toggle product space,
     so the verdict must degrade to co-simulation, never to a silent skip *)
  let g, _, inner, _ = Testlib.chain [ Catalog.not_gate; Catalog.toggle ] in
  let config =
    { Codegen.Verify.default_config with max_states = 1; max_transitions = 1 }
  in
  match Codegen.Verify.check_partition ~config g (Netlist.Node_id.set_of_list inner) with
  | Codegen.Verify.Cosim_passed _ -> ()
  | v ->
    Alcotest.failf "expected Cosim_passed fallback, got %a"
      Codegen.Verify.pp_status v

let test_input_width_budget () =
  (* force the width budget to zero: even a combinational partition must
     fall back to co-simulation instead of enumerating (guards 1 lsl n) *)
  let g = Designs.Library.any_window_open_alarm.Designs.Design.network in
  let config = { Codegen.Verify.default_config with max_input_bits = 0 } in
  match Codegen.Verify.check_partition ~config g (set [ 5; 6; 7 ]) with
  | Codegen.Verify.Cosim_passed _ | Codegen.Verify.Skipped _ -> ()
  | v ->
    Alcotest.failf "expected a sampled verdict under a zero width budget, \
                    got %a"
      Codegen.Verify.pp_status v

(* --- tier 3: differential co-simulation and the shrinker ----------------- *)

(* Two networks with identical ids and interface but a different inner
   gate: the honest reference computes AND, the corrupted candidate OR. *)
let gate_pair ref_gate bad_gate =
  let build gate =
    let g, s1 = Graph.add Graph.empty Catalog.button in
    let g, s2 = Graph.add g Catalog.contact_switch in
    let g, n = Graph.add g gate in
    let g, l = Graph.add g Catalog.led in
    let g = Graph.connect g ~src:(s1, 0) ~dst:(n, 0) in
    let g = Graph.connect g ~src:(s2, 0) ~dst:(n, 1) in
    Graph.connect g ~src:(n, 0) ~dst:(l, 0)
  in
  (build ref_gate, build bad_gate)

let test_cosim_agrees_on_equal_networks () =
  let reference, candidate = gate_pair Catalog.and2 Catalog.and2 in
  match Codegen.Cosim.run ~reference candidate with
  | Codegen.Cosim.Agreed { scripts; checks } ->
    check Alcotest.bool "at least one usable script" true (scripts >= 1);
    check Alcotest.bool "baseline plus perturbations" true (checks > scripts)
  | Codegen.Cosim.Diverged f ->
    Alcotest.failf "identical networks diverged: %a" Codegen.Cosim.pp_failure f
  | Codegen.Cosim.Inconclusive reason ->
    Alcotest.failf "inconclusive on a race-free design: %s" reason

let test_cosim_finds_and_shrinks_corruption () =
  let reference, candidate = gate_pair Catalog.and2 Catalog.or2 in
  match Codegen.Cosim.run ~reference candidate with
  | Codegen.Cosim.Diverged f ->
    (* AND vs OR differs as soon as exactly one sensor is high, so the
       minimal counterexample is a single step at the earliest time *)
    check Alcotest.int "shrunk to one step" 1 (List.length f.Codegen.Cosim.script);
    (match f.Codegen.Cosim.script with
     | [ step ] -> check Alcotest.int "time lowered" 1 step.Sim.Stimulus.time
     | _ -> ());
    check Alcotest.int "original length recorded"
      Codegen.Cosim.default_config.Codegen.Cosim.steps
      f.Codegen.Cosim.original_steps;
    check Alcotest.bool "shrunk script still fails" true
      (Result.is_error
         (Sim.Equiv.check ~perturbation:f.Codegen.Cosim.perturbation
            ~reference ~candidate f.Codegen.Cosim.script));
    check Alcotest.bool "failure renders" true
      (Testlib.contains
         (Format.asprintf "%a" Codegen.Cosim.pp_failure f)
         "shrunk from")
  | Codegen.Cosim.Agreed _ -> Alcotest.fail "corrupted candidate not caught"
  | Codegen.Cosim.Inconclusive reason ->
    Alcotest.failf "inconclusive on a race-free design: %s" reason

let test_latent_race_checked_at_baseline () =
  (* Regression, fuzz seed 2027: PareDown puts {toggle, delay, or2} in
     one partition.  The flat design carries a latent tie between the
     delay block's timer expiry and a packet delivery which its own event
     schedule happens to resolve consistently — the flat-side
     sensitivity sample passes — while the rewrite's different schedule
     exposes it under shuffled tie orders.  The verifier used to report
     that undefined race as a merge divergence; it must instead check
     such scripts under the baseline engine only and count them. *)
  let g = Randgen.Generator.generate ~rng:(Prng.create 2027) ~inner:6 () in
  let sol = (Core.Paredown.run g).Core.Paredown.solution in
  let part = List.hd sol.Core.Solution.partitions in
  let rewrite = Codegen.Replace.apply g { Core.Solution.partitions = [ part ] } in
  let candidate = rewrite.Codegen.Replace.network in
  let script =
    Sim.Stimulus.random ~rng:(Prng.create 2005) ~sensors:(Graph.sensors g)
      ~steps:40 ~spacing:20
  in
  let pool = Sim.Equiv.perturbations 4 in
  (* pin the scenario's shape: the race shows only on the rewrite *)
  check Alcotest.bool "flat design pool-insensitive" false
    (Sim.Equiv.sensitive_under g pool script);
  check Alcotest.bool "rewrite exposes the race" true
    (Sim.Equiv.sensitive_under candidate pool script);
  let (report, outcome), entries =
    Obs.Metrics.with_scope (fun () ->
        ( Codegen.Verify.check_solution g sol,
          Codegen.Cosim.run ~reference:g candidate ))
  in
  (match outcome with
   | Codegen.Cosim.Agreed { scripts; _ } ->
     check Alcotest.bool "usable scripts" true (scripts >= 1)
   | Codegen.Cosim.Diverged f ->
     Alcotest.failf "undefined race reported as a merge divergence: %a"
       Codegen.Cosim.pp_failure f
   | Codegen.Cosim.Inconclusive reason -> Alcotest.fail reason);
  check Alcotest.bool "whole solution verifies" true
    (Codegen.Verify.ok report);
  let race_limited =
    match
      List.find_opt
        (fun e -> e.Obs.Metrics.name = "codegen.cosim.race_limited_scripts")
        entries
    with
    | Some { Obs.Metrics.value = Obs.Metrics.Count n; _ } -> n
    | Some _ | None -> 0
  in
  check Alcotest.bool "race-limited scripts counted" true (race_limited >= 1)

let test_shrink_synthetic () =
  (* predicate: fails whenever sensor 1 is driven high; everything else
     must be dropped and the surviving step pulled down to time 1 *)
  let mk time sensor value = { Sim.Stimulus.time; sensor; value } in
  let script =
    List.init 12 (fun i -> mk ((i + 1) * 7) (1 + (i mod 3)) (i mod 2 = 0))
  in
  let still_fails s =
    List.exists
      (fun (st : Sim.Stimulus.step) -> st.sensor = 1 && st.value)
      s
  in
  let shrunk = Codegen.Cosim.shrink ~still_fails script in
  check Alcotest.int "one step survives" 1 (List.length shrunk);
  (match shrunk with
   | [ st ] ->
     check Alcotest.int "sensor kept" 1 st.Sim.Stimulus.sensor;
     check Alcotest.bool "value kept" true st.Sim.Stimulus.value;
     check Alcotest.int "time minimised" 1 st.Sim.Stimulus.time
   | _ -> ());
  check Alcotest.bool "shrink never empties a failing script" true
    (still_fails shrunk)

let test_shrink_keeps_dependent_pairs () =
  (* predicate needs two particular steps in order; both must survive *)
  let mk time sensor value = { Sim.Stimulus.time; sensor; value } in
  let script = List.init 10 (fun i -> mk ((i + 1) * 5) (i mod 4) true) in
  let still_fails s =
    let sensors = List.map (fun (st : Sim.Stimulus.step) -> st.sensor) s in
    List.mem 2 sensors && List.mem 3 sensors
  in
  let shrunk = Codegen.Cosim.shrink ~still_fails script in
  check Alcotest.int "two steps survive" 2 (List.length shrunk);
  check Alcotest.bool "still failing" true (still_fails shrunk)

(* --- satellite fixes ----------------------------------------------------- *)

let test_stimulus_spacing_clamped () =
  (* spacing 0 used to crash Prng.int; it now means "a flip every tick" *)
  let script =
    Sim.Stimulus.random ~rng:(Prng.create 3) ~sensors:[ 1; 2 ] ~steps:10
      ~spacing:0
  in
  check Alcotest.int "all steps generated" 10 (List.length script);
  let rec strictly_increasing prev = function
    | [] -> true
    | (st : Sim.Stimulus.step) :: rest ->
      st.time > prev && strictly_increasing st.time rest
  in
  check Alcotest.bool "times strictly increase from 0" true
    (strictly_increasing 0 script)

let test_plan_counters_pinned () =
  (* the endpoint-table rewrite must not change what the counters count:
     one plan per build, one merged node per member *)
  let (), entries =
    Obs.Metrics.with_scope (fun () ->
        ignore (Codegen.Plan.build podium (set [ 2; 3; 4; 5 ]));
        ignore (Codegen.Plan.build podium (set [ 6; 8; 9 ])))
  in
  let count name =
    match
      List.find_opt (fun e -> e.Obs.Metrics.name = name) entries
    with
    | Some { Obs.Metrics.value = Obs.Metrics.Count n; _ } -> n
    | Some _ | None -> -1
  in
  check Alcotest.int "plans built" 2 (count "codegen.plans_built");
  check Alcotest.int "merged nodes" 7 (count "codegen.merged_nodes")

let test_perturbation_pool () =
  let ps = Sim.Equiv.perturbations 4 in
  check Alcotest.int "requested count" 4 (List.length ps);
  check Alcotest.int "pool capped" 8 (List.length (Sim.Equiv.perturbations 100));
  let labels = List.map (fun p -> p.Sim.Equiv.p_label) ps in
  check Alcotest.int "labels distinct" (List.length labels)
    (List.length (List.sort_uniq String.compare labels));
  check Alcotest.bool "deterministic" true (Sim.Equiv.perturbations 4 = ps)

(* --- whole-solution reporting -------------------------------------------- *)

let test_report_no_silent_skips () =
  (* every Table 1 design: each partition must land in exactly one
     bucket, and none may fail *)
  List.iter
    (fun d ->
      let g = d.Designs.Design.network in
      let sol = (Core.Paredown.run g).Core.Paredown.solution in
      let report = Codegen.Verify.check_solution g sol in
      check Alcotest.int
        (d.Designs.Design.name ^ ": one status per partition")
        (Core.Solution.programmable_count sol)
        (List.length report.Codegen.Verify.results);
      let t = Codegen.Verify.tally report in
      check Alcotest.int (d.Designs.Design.name ^ ": buckets sum")
        (Core.Solution.programmable_count sol)
        Codegen.Verify.(
          t.proven + t.bounded + t.cosim_passed + t.failed + t.skipped);
      if not (Codegen.Verify.ok report) then
        Alcotest.failf "%s failed verification: %a" d.Designs.Design.name
          Codegen.Verify.pp_report report)
    Designs.Library.table1

let prop_random_solutions_never_fail =
  (* the fuzz experiment at test scale: whatever tier applies, no
     partition of a PareDown solution may produce a counterexample *)
  QCheck.Test.make ~name:"random PareDown solutions verify without failures"
    ~count:10
    (Testlib.network_arbitrary ~max_inner:10 ()) (fun (_, _, g) ->
      let sol = (Core.Paredown.run g).Core.Paredown.solution in
      Codegen.Verify.ok (Codegen.Verify.check_solution g sol))

let () =
  Alcotest.run "verify"
    [
      ( "bounded",
        [
          Alcotest.test_case "sequential merge closes" `Quick
            test_sequential_merge_bounded;
          Alcotest.test_case "toggle chain closes" `Quick
            test_toggle_chain_bounded;
          Alcotest.test_case "budget exhaustion falls back" `Quick
            test_exhausted_budget_falls_back;
          Alcotest.test_case "input width budget" `Quick
            test_input_width_budget;
        ] );
      ( "cosim",
        [
          Alcotest.test_case "equal networks agree" `Quick
            test_cosim_agrees_on_equal_networks;
          Alcotest.test_case "latent race checked at baseline" `Quick
            test_latent_race_checked_at_baseline;
          Alcotest.test_case "corruption caught and shrunk" `Quick
            test_cosim_finds_and_shrinks_corruption;
          Alcotest.test_case "shrink synthetic" `Quick test_shrink_synthetic;
          Alcotest.test_case "shrink keeps dependent pairs" `Quick
            test_shrink_keeps_dependent_pairs;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "stimulus spacing clamped" `Quick
            test_stimulus_spacing_clamped;
          Alcotest.test_case "plan counters pinned" `Quick
            test_plan_counters_pinned;
          Alcotest.test_case "perturbation pool" `Quick test_perturbation_pool;
        ] );
      ( "report",
        [
          Alcotest.test_case "no silent skips on table 1" `Quick
            test_report_no_silent_skips;
        ] );
      ("properties", Testlib.qtests [ prop_random_solutions_never_fail ]);
    ]
